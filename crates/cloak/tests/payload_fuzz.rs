//! Structure-aware mutation fuzzing of the payload decoder.
//!
//! The container has no `cargo-fuzz`, so this is the offline stand-in
//! (the routinator `fuzz/` idiom recast as seeded proptest): generate a
//! corpus of *valid* wire-v2 payloads, then sweep the mutations an
//! adversary actually gets to make — bit flips, truncations, and hostile
//! length-field splices — and assert the decoder never panics, never
//! sizes an allocation from a hostile count, and accepts only canonical
//! bytes (anything it accepts must re-encode to the exact input).
//!
//! Deterministic by test name; override with `PROPTEST_SEED` to widen
//! the sweep. CI runs this at a fixed case budget (`fuzz-smoke`).

use cloak::{CloakPayload, DecodeError, LevelMeta, SpatialTolerance};
use keystream::Tag128;
use proptest::prelude::*;
use roadnet::SegmentId;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a structurally valid payload from a seed: 0–3 levels, 0–5
/// segments per level, hints bounded by steps, mixed tolerance kinds.
fn corpus_payload(seed: u64) -> CloakPayload {
    let mut s = seed;
    let level_count = (splitmix(&mut s) % 4) as usize;
    let mut levels = Vec::with_capacity(level_count);
    let mut total = 0u32;
    for _ in 0..level_count {
        let count = (splitmix(&mut s) % 6) as u32;
        total += count;
        let mut tag = [0u8; 16];
        for b in tag.iter_mut() {
            *b = splitmix(&mut s) as u8;
        }
        let tolerance = match splitmix(&mut s) % 3 {
            0 => SpatialTolerance::Unlimited,
            1 => SpatialTolerance::TotalLength((splitmix(&mut s) % 100_000) as f64 / 7.0),
            _ => SpatialTolerance::BboxDiagonal((splitmix(&mut s) % 100_000) as f64 / 3.0),
        };
        let enc_rounds = (0..count).map(|_| splitmix(&mut s) as u32).collect();
        let hint_count = if count == 0 {
            0
        } else {
            splitmix(&mut s) % (count as u64 + 1)
        };
        let enc_hints = (0..hint_count).map(|_| splitmix(&mut s) as u32).collect();
        levels.push(LevelMeta {
            count,
            tag: Tag128(tag),
            tolerance,
            enc_rounds,
            enc_hints,
        });
    }
    // Region = seed segment + every added segment, strictly ascending.
    let mut segments = Vec::with_capacity(total as usize + 1);
    let mut id = splitmix(&mut s) % 1000;
    for _ in 0..=total {
        segments.push(SegmentId(id as u32));
        id += 1 + splitmix(&mut s) % 9;
    }
    CloakPayload {
        algorithm: 1 + (splitmix(&mut s) % 2) as u8,
        nonce: splitmix(&mut s),
        epoch: splitmix(&mut s),
        segments,
        levels,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bit flips anywhere in a valid payload: decode never panics, and
    /// any mutant it *accepts* is canonical — it re-encodes to exactly
    /// the mutated bytes, so no two distinct byte strings alias to the
    /// same accepted payload.
    #[test]
    fn bit_flipped_payloads_never_panic_and_accepts_are_canonical(
        seed in any::<u64>(),
        flips in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        let mut bytes = corpus_payload(seed).encode().to_vec();
        for &f in &flips {
            let idx = (f >> 3) as usize % bytes.len();
            bytes[idx] ^= 1 << (f & 7);
        }
        if let Ok(decoded) = CloakPayload::decode(&bytes) {
            prop_assert_eq!(decoded.encode().to_vec(), bytes);
        }
    }

    /// Every strict prefix of a valid payload must be rejected — the
    /// format is self-delimiting, so a truncation can never parse.
    #[test]
    fn every_truncation_of_a_valid_payload_is_rejected(seed in any::<u64>()) {
        let bytes = corpus_payload(seed).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                CloakPayload::decode(&bytes[..cut]).is_err(),
                "decode accepted a {}-byte prefix of a {}-byte payload",
                cut, bytes.len()
            );
        }
    }

    /// Hostile length splice: overwrite the segment-count field with an
    /// arbitrary inflated value. Decode must reject it as hostile (or as
    /// a downstream structural error) without allocating toward it.
    #[test]
    fn spliced_segment_counts_never_over_allocate(
        seed in any::<u64>(),
        hostile in any::<u32>(),
    ) {
        let payload = corpus_payload(seed);
        let mut bytes = payload.encode().to_vec();
        bytes[22..26].copy_from_slice(&hostile.to_le_bytes());
        let real = payload.segments.len() as u32;
        match CloakPayload::decode(&bytes) {
            Ok(p) => prop_assert_eq!(p.segments.len() as u32, real),
            Err(e) => {
                if (hostile as u64) * 4 > bytes.len() as u64 {
                    // Truly unsatisfiable counts must be classified as
                    // hostile — proof the cap fired before allocation.
                    prop_assert_eq!(e, DecodeError::HostileLength {
                        field: "segment",
                        claimed: hostile as u64,
                        available: bytes.len() - 26,
                    });
                }
            }
        }
    }

    /// Random byte soup prefixed with valid magic+version: never panics,
    /// and almost surely rejects (if it accepts, it must be canonical).
    #[test]
    fn arbitrary_bytes_after_valid_header_never_panic(
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = b"RCLK\x02".to_vec();
        bytes.extend_from_slice(&body);
        if let Ok(decoded) = CloakPayload::decode(&bytes) {
            prop_assert_eq!(decoded.encode().to_vec(), bytes);
        }
    }
}

/// The mutation sweep above plus the unit suite must hold for the empty
/// and near-empty inputs a fuzzer always finds first.
#[test]
fn degenerate_inputs_are_rejected_without_panic() {
    for input in [&[][..], b"R", b"RCLK", b"RCLK\x02", b"RCLK\x02\x01"] {
        assert!(CloakPayload::decode(input).is_err());
    }
}
