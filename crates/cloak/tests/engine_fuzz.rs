//! Seeded mutation fuzzing of the engine state machine.
//!
//! `payload_fuzz.rs` sweeps the *decode* surface; this file points the
//! same offline idiom (seeded splitmix corpus + bounded proptest sweep)
//! at the *engine* surface: randomized forward / backward / ambiguity
//! sequences driven over mutated region states — disconnected islands,
//! duplicate inserts, hostile rounds and hint stacks — against both
//! engines. The properties:
//!
//! * no call ever panics: every outcome is a [`StepAccept`] or a
//!   structured [`StepFailure`], whatever state the region was left in;
//! * **forward ∘ backward round-trips whenever forward succeeded** —
//!   from *any* mutated starting region, a chain of accepted forward
//!   steps reversed with the recorded rounds/hints recovers the exact
//!   chain, because forward acceptance already proved the transition
//!   unambiguous;
//! * hostile backward inputs (wrong round, wrong removed segment, empty
//!   or garbage hint stack) fail closed: `Err`, or an `Ok` that is a
//!   genuine consistent predecessor — never an out-of-region segment.
//!
//! Deterministic by test name; override with `PROPTEST_SEED` to widen
//! the sweep (CI's `fuzz-smoke` job does).

use cloak::{
    HintStack, RegionState, ReversibleEngine, RgeEngine, RpleEngine, SpatialTolerance, StepAccept,
    StepScratch,
};
use keystream::{DrawStream, Key256};
use proptest::prelude::*;
use roadnet::{grid_city, RoadNetwork, SegmentId};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn stream(seed: u64, step: u32) -> DrawStream {
    DrawStream::new(Key256::from_seed(seed), &step.to_le_bytes())
}

fn engines(net: &RoadNetwork) -> Vec<Box<dyn ReversibleEngine>> {
    vec![
        Box::new(RgeEngine::new()),
        Box::new(RpleEngine::build(net, 8)),
    ]
}

fn tolerance_from(seed: u64) -> SpatialTolerance {
    let mut s = seed;
    match splitmix(&mut s) % 3 {
        0 => SpatialTolerance::Unlimited,
        1 => SpatialTolerance::TotalLength(100.0 + (splitmix(&mut s) % 4000) as f64),
        _ => SpatialTolerance::BboxDiagonal(150.0 + (splitmix(&mut s) % 4000) as f64),
    }
}

/// A mutated region state: a random base segment plus a handful of
/// random extra segments — possibly disconnected from the base, possibly
/// duplicated (duplicate inserts are no-ops). Exactly the shape a
/// corrupted snapshot or a truncated restore would leave behind.
fn mutated_region(net: &RoadNetwork, seed: u64) -> (RegionState, SegmentId) {
    let mut s = seed;
    let n = net.segment_count() as u64;
    let base = SegmentId((splitmix(&mut s) % n) as u32);
    let mut region = RegionState::from_segments(net, [base]);
    for _ in 0..splitmix(&mut s) % 8 {
        region.insert(net, SegmentId((splitmix(&mut s) % n) as u32));
    }
    (region, base)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Forward walks started from mutated regions round-trip exactly:
    /// every accepted forward step reverses to its predecessor with the
    /// recorded round and hints, for both engines, under every tolerance
    /// kind. Walks that fail forward (dead ends, voided budgets) are
    /// skipped — acceptance is the precondition of reversibility.
    #[test]
    fn forward_backward_round_trips_from_mutated_regions(
        seed in any::<u64>(),
        key_seed in any::<u64>(),
        steps in 1usize..10,
    ) {
        let net = grid_city(5, 5, 100.0);
        let tolerance = tolerance_from(seed ^ 0x701e);
        for engine in engines(&net) {
            let (mut region, base) = mutated_region(&net, seed);
            let mut scratch = StepScratch::default();
            let mut last = base;
            let mut chain = Vec::new();
            let mut hints = Vec::new();
            let mut rounds = Vec::new();
            for t in 0..steps {
                let mut s = stream(key_seed, t as u32);
                let Ok(acc) = engine.forward_step(
                    &net, &region, last, &mut s, &tolerance, &mut scratch,
                ) else {
                    break;
                };
                prop_assert!(
                    !region.contains(acc.segment),
                    "{}: accepted a segment already in the region",
                    engine.name()
                );
                region.insert(&net, acc.segment);
                if let Some(h) = acc.hint {
                    hints.push(h);
                }
                rounds.push(acc.draws);
                chain.push(acc.segment);
                last = acc.segment;
            }
            // Reverse whatever prefix was accepted.
            let mut hint_stack = HintStack::new(hints);
            for t in (0..chain.len()).rev() {
                let removed = chain[t];
                region.remove(&net, removed);
                let mut s = stream(key_seed, t as u32);
                let prev = engine
                    .backward_step(
                        &net, &region, removed, &mut s, &tolerance, rounds[t],
                        &mut hint_stack, &mut scratch,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{}: accepted step {t} failed to reverse: {e}", engine.name())
                    });
                let expected = if t == 0 { base } else { chain[t - 1] };
                prop_assert_eq!(
                    prev, expected,
                    "{}: backward step {} recovered the wrong predecessor",
                    engine.name(), t
                );
            }
        }
    }

    /// Random operation soup over mutated regions: interleaved forward,
    /// backward, and ambiguity calls with hostile arguments (random
    /// removed segments, random expected rounds, garbage hint stacks).
    /// Nothing panics; backward either fails closed or returns a segment
    /// of the network; ambiguity counts are finite.
    #[test]
    fn random_operation_sequences_never_panic(
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u64>(), 1..24),
    ) {
        let net = grid_city(4, 4, 100.0);
        let n = net.segment_count() as u64;
        let tolerance = tolerance_from(seed);
        for engine in engines(&net) {
            let (mut region, base) = mutated_region(&net, seed);
            let mut scratch = StepScratch::default();
            let mut last = base;
            for (i, &op) in ops.iter().enumerate() {
                let mut s = stream(seed ^ op, i as u32);
                match op % 3 {
                    0 => {
                        if let Ok(StepAccept { segment, .. }) = engine.forward_step(
                            &net, &region, last, &mut s, &tolerance, &mut scratch,
                        ) {
                            region.insert(&net, segment);
                            last = segment;
                        }
                    }
                    1 => {
                        // Hostile backward: random removed segment (not
                        // necessarily ever added), random round, garbage
                        // hints. The region must survive untouched.
                        let removed = SegmentId((op % n) as u32);
                        let was_in = region.remove(&net, removed);
                        let mut hints =
                            HintStack::new(vec![(op >> 7) as u32; (op % 3) as usize]);
                        let before = region.len();
                        let result = engine.backward_step(
                            &net, &region, removed, &mut s, &tolerance,
                            (op >> 11) as u32 % 64, &mut hints, &mut scratch,
                        );
                        prop_assert_eq!(region.len(), before);
                        if let Ok(prev) = result {
                            prop_assert!((prev.0 as u64) < n);
                        }
                        if was_in {
                            region.insert(&net, removed);
                        }
                    }
                    _ => {
                        let removed = SegmentId((op % n) as u32);
                        let was_in = region.remove(&net, removed);
                        let mut hints =
                            HintStack::new(vec![(op >> 9) as u32; (op % 2) as usize]);
                        let count = engine.ambiguous_predecessors(
                            &net, &region, removed, &mut s, &tolerance, &mut hints,
                            &mut scratch,
                        );
                        prop_assert!(count <= net.segment_count());
                        if was_in {
                            region.insert(&net, removed);
                        }
                    }
                }
            }
        }
    }

    /// A wrong expected round must not silently alias to the right
    /// predecessor *chain*: reversing an accepted step with a mutated
    /// round either fails, or recovers some consistent predecessor — and
    /// with the *correct* round it always recovers the true one (the
    /// determinism the receipt's encrypted round metadata buys).
    #[test]
    fn mutated_rounds_never_break_determinism_of_the_true_round(
        seed in any::<u64>(),
        key_seed in any::<u64>(),
        round_delta in 1u32..16,
    ) {
        let net = grid_city(5, 5, 100.0);
        let tolerance = SpatialTolerance::Unlimited;
        for engine in engines(&net) {
            let (mut region, base) = mutated_region(&net, seed);
            let mut scratch = StepScratch::default();
            let mut s = stream(key_seed, 0);
            let Ok(acc) = engine.forward_step(
                &net, &region, base, &mut s, &tolerance, &mut scratch,
            ) else {
                continue;
            };
            // True round: exact recovery, twice (stateless determinism).
            for _ in 0..2 {
                let mut hints = HintStack::new(acc.hint.into_iter().collect());
                let mut s = stream(key_seed, 0);
                let prev = engine.backward_step(
                    &net, &region, acc.segment, &mut s, &tolerance, acc.draws,
                    &mut hints, &mut scratch,
                );
                prop_assert_eq!(prev.ok(), Some(base), "{}", engine.name());
            }
            // Mutated round: fail closed or land on a real segment.
            let mut hints = HintStack::new(acc.hint.into_iter().collect());
            let mut s = stream(key_seed, 0);
            if let Ok(prev) = engine.backward_step(
                &net, &region, acc.segment, &mut s, &tolerance,
                acc.draws.wrapping_add(round_delta), &mut hints, &mut scratch,
            ) {
                prop_assert!((prev.0 as usize) < net.segment_count());
            }
            region.insert(&net, acc.segment);
        }
    }
}

/// The degenerate states a fuzzer finds first: a single-segment region
/// (nothing to remove), and backward over an empty hint stack where the
/// engine required hints. All fail closed.
#[test]
fn degenerate_states_fail_closed() {
    let net = grid_city(3, 3, 100.0);
    let tolerance = SpatialTolerance::Unlimited;
    for engine in engines(&net) {
        let region = RegionState::from_segments(&net, [SegmentId(0)]);
        let mut scratch = StepScratch::default();
        // Backward with `removed` never in the region, round 0, no hints:
        // must not panic, must not invent mass.
        let mut hints = HintStack::new(Vec::new());
        let mut s = stream(7, 0);
        let _ = engine.backward_step(
            &net,
            &region,
            SegmentId(5),
            &mut s,
            &tolerance,
            0,
            &mut hints,
            &mut scratch,
        );
        let mut s = stream(7, 0);
        let mut hints = HintStack::new(Vec::new());
        let count = engine.ambiguous_predecessors(
            &net,
            &region,
            SegmentId(5),
            &mut s,
            &tolerance,
            &mut hints,
            &mut scratch,
        );
        assert!(count <= net.segment_count());
    }
}
