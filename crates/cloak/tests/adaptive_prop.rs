//! Property tests for particle-filter degeneracy in the adaptive
//! Bayesian tracker.
//!
//! A bootstrap filter's classic failure mode is weight degeneracy: after
//! a few sharply-peaked observations almost all importance weight sits
//! on a handful of particles, the effective sample size (ESS) collapses,
//! and — if nothing intervenes — the particle set can empty out entirely
//! when an observation refutes every survivor. The tracker documents two
//! defenses (`cloak::attack::adaptive` module docs):
//!
//! * with resampling **enabled** (the default), ESS collapse triggers a
//!   systematic resample back toward uniform weights;
//! * with resampling **disabled**, total refutation falls back to
//!   **uniform reinjection** over the observed region — the particle set
//!   is rebuilt, never left empty.
//!
//! These tests drive the filter with adversarial density waves (sharply
//! peaked, moving occupancy) and teleporting regions under `resample:
//! false` and assert the fallback fires, the particle set never empties,
//! and every reported posterior stays finite and sound.

use cloak::attack::temporal::Observation;
use cloak::{AdaptiveConfig, AdaptiveTracker};
use mobisim::OccupancySnapshot;
use proptest::prelude::*;
use roadnet::{grid_city, SegmentId};

/// A snapshot with all density piled on one segment (plus a 1-user
/// floor): the sharpest observation likelihood the tracker can see.
fn peaked_snapshot(segments: usize, peak: usize, height: u32) -> OccupancySnapshot {
    let mut counts = vec![1u32; segments];
    counts[peak] = height;
    OccupancySnapshot::from_counts(counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Resampling disabled + teleporting regions (each observation's
    /// region is disjoint from — and unreachable from — the last):
    /// every observation totally refutes the propagated particles, so
    /// the documented uniform-reinjection fallback must fire every
    /// time, and the particle set must never be empty afterward.
    #[test]
    fn total_refutation_reinjects_instead_of_emptying(
        seed in any::<u64>(),
        particles in 1usize..96,
    ) {
        let net = grid_city(12, 12, 100.0);
        // max_speed 5 m/s × dt 10 s = 50 m < one 100 m segment: the
        // conservative hop budget stays tiny, so a far jump is provably
        // unreachable.
        let mut tracker = AdaptiveTracker::new(
            &net,
            5.0,
            10.0,
            AdaptiveConfig {
                particles,
                resample: false,
                seed,
                ..Default::default()
            },
        );
        let snapshot = OccupancySnapshot::uniform(net.segment_count(), 2);
        // Two far-apart corners of the grid, alternating: every hop is
        // far outside the reachable set of the previous region.
        let near: Vec<SegmentId> = (0..5).map(SegmentId).collect();
        let far: Vec<SegmentId> = (200..205).map(SegmentId).collect();
        let mut last_reinjections = 0;
        for tick in 1..=6u64 {
            let region = if tick % 2 == 1 { &near } else { &far };
            let obs = tracker.observe(
                &net,
                "owner",
                Observation {
                    tick,
                    region,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(region[0]),
                region.len(),
            );
            prop_assert!(obs.entropy_bits.is_finite());
            prop_assert!(obs.user_entropy_bits.is_finite());
            prop_assert_eq!(obs.true_in_support, Some(true), "epsilon mixture keeps truth");
            let count = tracker.particle_count("owner").expect("owner tracked");
            prop_assert_eq!(count, particles.max(1), "particle set must never shrink");
            if tick > 1 {
                // Every teleport refutes all particles: reinjection fired.
                prop_assert!(
                    tracker.reinjections() > last_reinjections,
                    "tick {}: no reinjection after a total refutation", tick
                );
            }
            last_reinjections = tracker.reinjections();
        }
        prop_assert_eq!(tracker.resamples(), 0, "resampling was disabled");
    }

    /// Adversarial density wave with resampling disabled: the particles
    /// first spread over the region under a flat snapshot, then a sharp
    /// occupancy peak appears that only the nearby particles can reach
    /// within the hop budget — their weights soar while the stragglers'
    /// collapse. The run is made twice:
    ///
    /// * with the ESS guard **disarmed** (`ess_fraction: 0.0`), the raw
    ///   degeneracy is visible: terminal ESS falls well below the
    ///   particle count;
    /// * with the default guard and `resample: false`, the same ESS
    ///   collapse must trigger the documented uniform-reinjection
    ///   fallback (the reinjection counter moves; the observation is
    ///   flagged `reset`) and the particle set never shrinks.
    ///
    /// In both runs every posterior stays finite and sound.
    #[test]
    fn density_wave_collapses_ess_without_breaking_the_filter(
        seed in any::<u64>(),
        height in 50u32..5000,
    ) {
        let net = grid_city(8, 8, 100.0);
        let particles = 64;
        // 5 m/s × 10 s = 50 m: a 2-hop budget on 100 m segments, so a
        // particle parked at the far end of the region cannot chase the
        // peak.
        let run = |ess_fraction: f64| {
            let mut tracker = AdaptiveTracker::new(
                &net,
                5.0,
                10.0,
                AdaptiveConfig {
                    particles,
                    resample: false,
                    ess_fraction,
                    seed,
                    ..Default::default()
                },
            );
            let region: Vec<SegmentId> = (10..26).map(SegmentId).collect();
            let mut resets = 0u32;
            for tick in 1..=8u64 {
                // Tick 1 is flat (particles spread over the region);
                // then the peak marches one segment per tick.
                let peak = region[(tick as usize - 1) % region.len()].0 as usize;
                let snapshot = if tick == 1 {
                    OccupancySnapshot::uniform(net.segment_count(), 1)
                } else {
                    peaked_snapshot(net.segment_count(), peak, height)
                };
                let obs = tracker.observe(
                    &net,
                    "owner",
                    Observation {
                        tick,
                        region: &region,
                        snapshot: &snapshot,
                        snapshot_fresh: true,
                    },
                    None,
                    Some(SegmentId(peak as u32)),
                    region.len(),
                );
                assert!(obs.entropy_bits.is_finite() && obs.entropy_bits >= 0.0);
                assert_eq!(obs.true_in_support, Some(true));
                assert_eq!(
                    tracker.particle_count("owner"),
                    Some(particles),
                    "no particle loss under the wave"
                );
                let ess = tracker.ess("owner").expect("owner tracked");
                assert!(
                    ess >= 1.0 - 1e-9 && ess <= particles as f64 + 1e-9,
                    "ESS {ess} outside [1, N]"
                );
                resets += u32::from(obs.reset);
            }
            assert_eq!(tracker.resamples(), 0, "resampling was disabled");
            (tracker.ess("owner").expect("owner tracked"), tracker.reinjections(), resets)
        };

        // Guard disarmed: the wave genuinely degrades the ESS.
        let (raw_ess, _, _) = run(0.0);
        prop_assert!(
            raw_ess < particles as f64 * 0.75,
            "density wave failed to degrade ESS ({raw_ess:.1} of {particles})"
        );

        // Default guard, resampling off: the collapse must route through
        // the uniform-reinjection fallback (which restores ESS to N).
        let (guarded_ess, reinjections, resets) = run(AdaptiveConfig::default().ess_fraction);
        prop_assert!(
            reinjections > 0,
            "ESS collapse never triggered the reinjection fallback"
        );
        prop_assert!(resets > 0, "reinjection must be surfaced as a reset");
        prop_assert!(
            guarded_ess > raw_ess,
            "the fallback should leave ESS healthier than the unguarded run"
        );
    }

    /// The same wave with resampling enabled: ESS collapse triggers
    /// systematic resampling (the counter moves), and the posterior
    /// keeps the truth in support throughout.
    #[test]
    fn resampling_fires_under_the_same_wave(seed in any::<u64>()) {
        let net = grid_city(8, 8, 100.0);
        let mut tracker = AdaptiveTracker::new(
            &net,
            20.0,
            10.0,
            AdaptiveConfig {
                particles: 64,
                resample: true,
                ess_fraction: 0.9, // aggressive threshold: any skew resamples
                seed,
                ..Default::default()
            },
        );
        let region: Vec<SegmentId> = (10..26).map(SegmentId).collect();
        for tick in 1..=8u64 {
            let peak = region[(tick as usize - 1) % region.len()].0 as usize;
            let snapshot = peaked_snapshot(net.segment_count(), peak, 1000);
            let obs = tracker.observe(
                &net,
                "owner",
                Observation {
                    tick,
                    region: &region,
                    snapshot: &snapshot,
                    snapshot_fresh: true,
                },
                None,
                Some(SegmentId(peak as u32)),
                region.len(),
            );
            prop_assert_eq!(obs.true_in_support, Some(true));
        }
        prop_assert!(
            tracker.resamples() > 0,
            "a peaked wave at ess_fraction 0.9 must trigger resampling"
        );
    }
}
