//! Engine-level property tests on irregular (non-grid) maps: the
//! step-by-step reversibility contract must hold on realistic street
//! topology, not only on lattices.

use cloak::{
    HintStack, RegionState, ReversibleEngine, RgeEngine, RpleEngine, SpatialTolerance, StepScratch,
};
use keystream::{DrawStream, Key256};
use proptest::prelude::*;
use roadnet::{irregular_city, IrregularConfig, RoadNetwork, SegmentId};

fn step_stream(key_seed: u64, step: u32) -> DrawStream {
    DrawStream::new(Key256::from_seed(key_seed), &step.to_le_bytes())
}

/// Walks forward `steps` times and back, asserting exact recovery.
/// Returns false when the walk dead-ended (skipped case).
fn roundtrip(
    engine: &dyn ReversibleEngine,
    net: &RoadNetwork,
    seed_segment: SegmentId,
    steps: usize,
    key_seed: u64,
    tolerance: SpatialTolerance,
) -> Result<bool, TestCaseError> {
    let mut scratch = StepScratch::default();
    let mut region = RegionState::from_segments(net, [seed_segment]);
    let mut last = seed_segment;
    let mut chain = Vec::new();
    let mut hints = Vec::new();
    let mut rounds = Vec::new();
    for t in 0..steps {
        let mut s = step_stream(key_seed, t as u32);
        match engine.forward_step(net, &region, last, &mut s, &tolerance, &mut scratch) {
            Ok(acc) => {
                region.insert(net, acc.segment);
                if let Some(h) = acc.hint {
                    hints.push(h);
                }
                rounds.push(acc.draws);
                chain.push(acc.segment);
                last = acc.segment;
            }
            Err(_) => return Ok(false),
        }
    }
    let mut hint_stack = HintStack::new(hints);
    let mut current = *chain.last().expect("steps >= 1");
    for t in (0..steps).rev() {
        region.remove(net, current);
        let mut s = step_stream(key_seed, t as u32);
        let prev = engine
            .backward_step(
                net,
                &region,
                current,
                &mut s,
                &tolerance,
                rounds[t],
                &mut hint_stack,
                &mut scratch,
            )
            .map_err(|e| TestCaseError::fail(format!("backward step {t}: {e}")))?;
        let expected = if t == 0 { seed_segment } else { chain[t - 1] };
        prop_assert_eq!(prev, expected, "backward step {} diverged", t);
        current = prev;
    }
    prop_assert_eq!(region.len(), 1);
    prop_assert!(region.contains(seed_segment));
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rge_reversible_on_irregular_maps(
        map_seed in any::<u64>(),
        key_seed in any::<u64>(),
        seg in 0u32..150,
        steps in 1usize..25,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 150,
            seed: map_seed,
            ..Default::default()
        });
        let engine = RgeEngine::new();
        roundtrip(
            &engine,
            &net,
            SegmentId(seg % net.segment_count() as u32),
            steps,
            key_seed,
            SpatialTolerance::Unlimited,
        )?;
    }

    #[test]
    fn rple_reversible_on_irregular_maps(
        map_seed in any::<u64>(),
        key_seed in any::<u64>(),
        seg in 0u32..150,
        steps in 1usize..15,
        t_len in 6usize..14,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 150,
            seed: map_seed,
            ..Default::default()
        });
        let engine = RpleEngine::build(&net, t_len);
        // Dead-ends are allowed (local expansion); completed walks must
        // reverse exactly, which `roundtrip` asserts internally.
        let _ = roundtrip(
            &engine,
            &net,
            SegmentId(seg % net.segment_count() as u32),
            steps,
            key_seed,
            SpatialTolerance::Unlimited,
        )?;
    }

    #[test]
    fn rge_reversible_under_random_tolerances(
        map_seed in any::<u64>(),
        key_seed in any::<u64>(),
        seg in 0u32..150,
        steps in 1usize..12,
        tol_m in 500f64..4000.0,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 150,
            seed: map_seed,
            ..Default::default()
        });
        let engine = RgeEngine::new();
        let _ = roundtrip(
            &engine,
            &net,
            SegmentId(seg % net.segment_count() as u32),
            steps,
            key_seed,
            SpatialTolerance::TotalLength(tol_m),
        )?;
    }

    #[test]
    fn forward_steps_always_extend_connected_regions(
        map_seed in any::<u64>(),
        key_seed in any::<u64>(),
        seg in 0u32..150,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 100,
            segments: 130,
            seed: map_seed,
            ..Default::default()
        });
        let engine = RgeEngine::new();
        let seed_segment = SegmentId(seg % net.segment_count() as u32);
        let mut scratch = StepScratch::default();
        let mut region = RegionState::from_segments(&net, [seed_segment]);
        let mut last = seed_segment;
        for t in 0..10u32 {
            let mut s = step_stream(key_seed, t);
            match engine.forward_step(
                &net,
                &region,
                last,
                &mut s,
                &SpatialTolerance::Unlimited,
                &mut scratch,
            ) {
                Ok(acc) => {
                    // The new segment touches the region.
                    prop_assert!(!region.contains(acc.segment));
                    let touches = region
                        .iter_ids()
                        .any(|m| net.segments_adjacent(m, acc.segment));
                    prop_assert!(touches, "selected segment is not on the frontier");
                    region.insert(&net, acc.segment);
                    let ids = region.to_sorted_ids();
                    prop_assert!(net.segments_connected(&ids));
                    last = acc.segment;
                }
                Err(_) => break,
            }
        }
    }
}
