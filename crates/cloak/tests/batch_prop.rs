//! Property tests for the owner-batched tick cores: the batched region
//! growth ([`cloak::anonymize_batch_with_scratch`]) and the batched
//! adversary evaluation
//! ([`cloak::attack::temporal::TemporalAdversary::begin_tick_population`])
//! must be bit-identical to the per-owner paths — for both engines,
//! every adversary mode, and owner counts of 0, 1, and sizes that are
//! not a multiple of any SIMD lane width.

use cloak::attack::temporal::{
    AdversaryConfig, AdversaryMode, Observation, ReplayProbe, TemporalAdversary,
};
use cloak::{
    anonymize_batch_with_scratch, anonymize_with_retry, random_expansion, BatchCloakItem,
    BatchCloakScratch, LevelRequirement, PrivacyProfile, ReversibleEngine, RgeEngine, RpleEngine,
};
use keystream::Key256;
use mobisim::OccupancySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{grid_city, SegmentId};

/// Empty batch, single owner, and two batch sizes that are not a
/// multiple of any power-of-two lane width.
const OWNER_COUNTS: &[usize] = &[0, 1, 5, 17];

const MAX_ATTEMPTS: u32 = 4;

fn batch_matches_per_owner(engine: &dyn ReversibleEngine) {
    let net = grid_city(8, 8, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(5))
        .level(LevelRequirement::with_k(9))
        .build()
        .unwrap();
    let mut scratch = BatchCloakScratch::new();
    for &n in OWNER_COUNTS {
        let key_vecs: Vec<Vec<Key256>> = (0..n as u64)
            .map(|i| vec![Key256::from_seed(3 * i), Key256::from_seed(3 * i + 1)])
            .collect();
        let items: Vec<BatchCloakItem<'_>> = (0..n)
            .map(|i| BatchCloakItem {
                // One mid-batch unknown segment exercises the error path
                // (and the arena truncation that follows it).
                segment: if i == 3 {
                    SegmentId(9999)
                } else {
                    SegmentId((i as u32 * 7) % 100)
                },
                profile: &profile,
                keys: &key_vecs[i],
                nonce: 0xabc ^ i as u64,
                max_attempts: MAX_ATTEMPTS,
            })
            .collect();
        let batched = anonymize_batch_with_scratch(&net, &snapshot, &items, engine, &mut scratch);
        assert_eq!(batched.len(), n);
        for (i, (item, res)) in items.iter().zip(&batched).enumerate() {
            let solo = anonymize_with_retry(
                &net,
                &snapshot,
                item.segment,
                &profile,
                item.keys,
                item.nonce,
                engine,
                MAX_ATTEMPTS,
            );
            match (res, solo) {
                (Ok((out_b, attempts_b)), Ok((out_s, attempts_s))) => {
                    assert_eq!(
                        out_b.payload.encode(),
                        out_s.payload.encode(),
                        "owner {i} of {n}: payload bytes diverge"
                    );
                    assert_eq!(out_b.chain, out_s.chain, "owner {i} of {n}");
                    assert_eq!(*attempts_b, attempts_s, "owner {i} of {n}");
                }
                (Err(e_b), Err(e_s)) => assert_eq!(*e_b, e_s, "owner {i} of {n}"),
                (b, s) => panic!("owner {i} of {n}: batched {b:?} vs per-owner {s:?}"),
            }
        }
    }
}

#[test]
fn rge_batch_is_bit_identical_to_per_owner() {
    batch_matches_per_owner(&RgeEngine::new());
}

#[test]
fn rple_batch_is_bit_identical_to_per_owner() {
    batch_matches_per_owner(&RpleEngine::build(&grid_city(8, 8, 100.0), 10));
}

#[test]
fn batched_adversary_observe_matches_per_owner() {
    let net = grid_city(8, 8, 100.0);
    let req = LevelRequirement::with_k(6);
    for mode in [
        AdversaryMode::Peel,
        AdversaryMode::Correlate,
        AdversaryMode::Move,
        AdversaryMode::All,
    ] {
        for &n in OWNER_COUNTS {
            let cfg = AdversaryConfig {
                mode,
                ..Default::default()
            };
            let mut batched = TemporalAdversary::new(&net, cfg.clone());
            let mut solo = TemporalAdversary::new(&net, cfg);
            let owners: Vec<String> = (0..n).map(|i| format!("owner-{i}")).collect();
            for tick in 1..=4u64 {
                let fresh = tick % 2 == 1;
                let snapshot =
                    OccupancySnapshot::uniform(net.segment_count(), ((tick % 3) + 1) as u32);
                // The batched adversary packs the whole population's
                // reachability masks up front; the per-owner adversary
                // computes each mask inside `observe`.
                batched.begin_tick_population(&snapshot, fresh, owners.iter().map(String::as_str));
                solo.begin_tick(&snapshot, fresh);
                for (i, owner) in owners.iter().enumerate() {
                    let seed = tick * 1000 + i as u64;
                    let true_segment = SegmentId(((i * 11 + tick as usize) % 100) as u32);
                    let region = random_expansion(
                        &net,
                        &snapshot,
                        true_segment,
                        &req,
                        &mut StdRng::seed_from_u64(seed),
                    )
                    .unwrap()
                    .segments;
                    let a = batched.observe(
                        &net,
                        owner,
                        Observation {
                            tick,
                            region: &region,
                            snapshot: &snapshot,
                            snapshot_fresh: fresh,
                        },
                        Some(ReplayProbe {
                            requirement: &req,
                            seed,
                        }),
                        Some(true_segment),
                    );
                    let b = solo.observe(
                        &net,
                        owner,
                        Observation {
                            tick,
                            region: &region,
                            snapshot: &snapshot,
                            snapshot_fresh: fresh,
                        },
                        Some(ReplayProbe {
                            requirement: &req,
                            seed,
                        }),
                        Some(true_segment),
                    );
                    assert_eq!(a, b, "mode {mode:?}, {n} owners, tick {tick}, {owner}");
                }
            }
        }
    }
}
