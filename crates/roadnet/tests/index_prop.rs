//! Property tests of the graph-index layer: landmark bounds must
//! bracket the true shortest-path metric, and the word-packed
//! reachability masks must equal the BFS hop balls bit for bit — the
//! index is an accelerator, never an approximation.

use proptest::prelude::*;
use roadnet::{
    grid_city, irregular_city, path, IrregularConfig, JunctionId, LandmarkTable, Point, ReachIndex,
    RoadNetworkBuilder, SegmentId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn landmark_bounds_bracket_true_distances(
        seed in any::<u64>(),
        a in 0u32..80,
        b in 0u32..80,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 80,
            segments: 104,
            seed,
            ..Default::default()
        });
        let table = net.landmark_table();
        let (a, b) = (JunctionId(a), JunctionId(b));
        let exact = path::shortest_path(&net, a, b).unwrap().length;
        let lb = table.lower_bound(a, b);
        let ub = table.upper_bound(a, b);
        prop_assert!(lb <= exact + 1e-6, "lower bound {lb} above exact {exact}");
        prop_assert!(ub >= exact - 1e-6, "upper bound {ub} below exact {exact}");
        prop_assert!(lb <= ub + 1e-6);
    }

    #[test]
    fn reach_masks_equal_bfs_hop_balls(
        seed in any::<u64>(),
        center in 0u32..100,
        hops in 0usize..5,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 80,
            segments: 104,
            seed,
            ..Default::default()
        });
        let center = SegmentId(center % net.segment_count() as u32);
        let reach = net.reach_index(hops);
        prop_assert_eq!(reach.hops(), hops);
        let ball: std::collections::HashSet<SegmentId> =
            path::segments_within_hops(&net, center, hops).into_iter().collect();
        for s in net.segment_ids() {
            prop_assert_eq!(
                reach.reaches(center, s),
                ball.contains(&s),
                "hop {} reachability of {} from {} disagrees with BFS",
                hops, s, center
            );
        }
    }

    #[test]
    fn union_mask_is_union_of_balls(
        seed in any::<u64>(),
        s0 in 0u32..100,
        s1 in 0u32..100,
        hops in 1usize..4,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 60,
            segments: 78,
            seed,
            ..Default::default()
        });
        let s0 = SegmentId(s0 % net.segment_count() as u32);
        let s1 = SegmentId(s1 % net.segment_count() as u32);
        let reach = net.reach_index(hops);
        let mut acc = Vec::new();
        reach.union_into([s0, s1], &mut acc);
        for s in net.segment_ids() {
            prop_assert_eq!(
                ReachIndex::mask_contains(&acc, s),
                reach.reaches(s0, s) || reach.reaches(s1, s)
            );
        }
    }
}

#[test]
fn landmarks_cover_every_component() {
    // Two disconnected islands: farthest-point sampling must land a
    // landmark on each before densifying either.
    let mut b = RoadNetworkBuilder::new();
    let j0 = b.add_junction(Point::new(0.0, 0.0));
    let j1 = b.add_junction(Point::new(100.0, 0.0));
    let j2 = b.add_junction(Point::new(5000.0, 0.0));
    let j3 = b.add_junction(Point::new(5100.0, 0.0));
    b.add_segment(j0, j1).unwrap();
    b.add_segment(j2, j3).unwrap();
    let net = b.build().unwrap();
    let table = LandmarkTable::build(&net, 2);
    for j in net.junction_ids() {
        let covered = (0..table.count()).any(|l| table.distances(l)[j.index()].is_finite());
        assert!(covered, "junction {j} unreachable from every landmark");
    }
    // Cross-island distances are provably infinite.
    assert_eq!(table.lower_bound(j0, j2), f64::INFINITY);
    // Same-island bounds are exact here (the landmark is an endpoint).
    assert!(table.upper_bound(j0, j1).is_finite());
}

#[test]
fn graph_index_is_shared_and_survives_clone() {
    let net = grid_city(5, 5, 100.0);
    let a = net.graph_index() as *const _;
    let b = net.graph_index() as *const _;
    assert_eq!(a, b, "second access reuses the built index");
    // A clone compares equal but rebuilds its own (empty) cache.
    let cloned = net.clone();
    assert_eq!(cloned, net);
    assert!(cloned.landmark_table().count() >= 1);
    // Cached reach indexes are shared per hop budget.
    let r1 = net.reach_index(3);
    let r2 = net.reach_index(3);
    assert!(std::sync::Arc::ptr_eq(&r1, &r2));
}
