//! Property tests of the road-network substrate: generator invariants,
//! shortest-path metric laws, index exactness, and I/O round-trips.

use proptest::prelude::*;
use roadnet::{
    geometry::point_segment_distance, grid_city, io, irregular_city, path, radial_city,
    IrregularConfig, JunctionId, Point, SegmentId, SegmentIndex,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn irregular_generator_meets_contract(
        seed in any::<u64>(),
        junctions in 20usize..150,
        extra_frac in 0usize..100,
    ) {
        // Keep the extra-edge count within what the jittered lattice can
        // supply on small maps (~¼ of the junction count is always safe).
        let extra = extra_frac * (junctions / 4) / 100;
        let cfg = IrregularConfig {
            junctions,
            segments: junctions - 1 + extra,
            seed,
            ..Default::default()
        };
        let net = irregular_city(&cfg);
        prop_assert_eq!(net.junction_count(), junctions);
        prop_assert_eq!(net.segment_count(), junctions - 1 + extra);
        prop_assert!(net.is_connected());
        // No self-loops or duplicate edges (builder guarantees).
        let mut pairs = std::collections::HashSet::new();
        for seg in net.segments() {
            let (a, b) = seg.endpoints();
            prop_assert_ne!(a, b);
            let key = (a.0.min(b.0), a.0.max(b.0));
            prop_assert!(pairs.insert(key));
        }
    }

    #[test]
    fn shortest_path_is_symmetric_and_triangular(
        seed in any::<u64>(),
        a in 0u32..100,
        b in 0u32..100,
        c in 0u32..100,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 100,
            segments: 130,
            seed,
            ..Default::default()
        });
        let (a, b, c) = (JunctionId(a), JunctionId(b), JunctionId(c));
        let dab = path::shortest_path(&net, a, b).unwrap().length;
        let dba = path::shortest_path(&net, b, a).unwrap().length;
        prop_assert!((dab - dba).abs() < 1e-6, "asymmetric: {} vs {}", dab, dba);
        let dac = path::shortest_path(&net, a, c).unwrap().length;
        let dcb = path::shortest_path(&net, c, b).unwrap().length;
        prop_assert!(dab <= dac + dcb + 1e-6, "triangle violated");
    }

    #[test]
    fn route_segments_concatenate(
        seed in any::<u64>(),
        src in 0u32..80,
        dst in 0u32..80,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 80,
            segments: 104,
            seed,
            ..Default::default()
        });
        let r = path::shortest_path(&net, JunctionId(src), JunctionId(dst)).unwrap();
        // Each consecutive junction pair is connected by the listed segment.
        let mut total = 0.0;
        for (i, &s) in r.segments.iter().enumerate() {
            let seg = net.segment(s);
            prop_assert!(seg.touches(r.junctions[i]));
            prop_assert!(seg.touches(r.junctions[i + 1]));
            total += seg.length();
        }
        prop_assert!((total - r.length).abs() < 1e-6);
    }

    #[test]
    fn nearest_segment_is_exact(
        seed in any::<u64>(),
        px in -500f64..2500.0,
        py in -500f64..2500.0,
        cell in 40f64..250.0,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 60,
            segments: 80,
            seed,
            ..Default::default()
        });
        let idx = SegmentIndex::build(&net, cell);
        let p = Point::new(px, py);
        let (_, got) = idx.nearest_segment(&net, p).unwrap();
        let best = net
            .segments()
            .map(|seg| {
                point_segment_distance(
                    p,
                    net.junction(seg.a()).position(),
                    net.junction(seg.b()).position(),
                )
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got - best).abs() < 1e-9, "index {} vs brute {}", got, best);
    }

    #[test]
    fn map_io_roundtrips(seed in any::<u64>()) {
        let net = irregular_city(&IrregularConfig {
            junctions: 50,
            segments: 66,
            seed,
            ..Default::default()
        });
        let mut buf = Vec::new();
        io::write_map(&net, &mut buf).unwrap();
        let back = io::read_map(buf.as_slice()).unwrap();
        prop_assert_eq!(net, back);
    }

    #[test]
    fn hop_distance_matches_ball_membership(
        seed in any::<u64>(),
        center in 0u32..60,
        hops in 0usize..4,
    ) {
        let net = irregular_city(&IrregularConfig {
            junctions: 50,
            segments: 66,
            seed,
            ..Default::default()
        });
        let center = SegmentId(center % net.segment_count() as u32);
        let ball = path::segments_within_hops(&net, center, hops);
        for s in net.segment_ids() {
            let d = path::segment_hop_distance(&net, center, s);
            prop_assert_eq!(
                ball.contains(&s),
                matches!(d, Some(d) if d <= hops),
                "segment {} ball membership disagrees with distance {:?}",
                s,
                d
            );
        }
    }

    #[test]
    fn csr_adjacency_matches_junction_walk(
        seed in any::<u64>(),
        junctions in 10usize..120,
        extra_frac in 0usize..100,
    ) {
        // The CSR table must reproduce the historical `neighbor_segments`
        // walk exactly — same ids, same order — because RPLE
        // pre-assignment consumes neighbors in this order and any
        // reordering would change every RPLE receipt.
        let extra = extra_frac * (junctions / 4) / 100;
        let net = irregular_city(&IrregularConfig {
            junctions,
            segments: junctions - 1 + extra,
            seed,
            ..Default::default()
        });
        for s in net.segment_ids() {
            // Independent reference: walk both endpoint incidence lists,
            // dedup keeping the first occurrence.
            let seg = net.segment(s);
            let mut expect = Vec::new();
            for j in [seg.a(), seg.b()] {
                for &n in net.junction(j).incident_segments() {
                    if n != s && !expect.contains(&n) {
                        expect.push(n);
                    }
                }
            }
            prop_assert_eq!(net.neighbor_segments_csr(s), expect.as_slice());
            prop_assert_eq!(net.neighbor_segments(s), expect);
        }
        // The flat junction view mirrors the per-junction lists.
        for j in net.junction_ids() {
            prop_assert_eq!(
                net.incident_segments(j),
                net.junction(j).incident_segments()
            );
        }
    }
}

#[test]
fn generators_cover_shapes() {
    // Deterministic sanity over the three families (not property-based;
    // shapes are fixed).
    let g = grid_city(6, 4, 80.0);
    assert_eq!(g.junction_count(), 24);
    let r = radial_city(2, 6, 100.0);
    assert_eq!(r.junction_count(), 13);
    assert!(r.is_connected());
    let a = roadnet::atlanta_like(3);
    assert_eq!((a.junction_count(), a.segment_count()), (6979, 9187));
}
