//! A human-readable text format for road networks.
//!
//! Maps the USGS-style inputs of the paper onto a simple line format:
//!
//! ```text
//! # comment
//! junction <id> <x> <y>
//! segment <id> <junction-a> <junction-b> [length]
//! ```
//!
//! Ids must be dense and in order (the builder assigns them that way); the
//! parser enforces this so files round-trip exactly.

use crate::builder::{BuildError, RoadNetworkBuilder};
use crate::geometry::Point;
use crate::graph::{JunctionId, RoadNetwork};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error from parsing a road-map file.
#[derive(Debug)]
pub enum MapFormatError {
    /// An I/O failure while reading or writing.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a reason.
    Parse(usize, String),
    /// The parsed structure was not a valid network.
    Build(BuildError),
}

impl fmt::Display for MapFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapFormatError::Io(e) => write!(f, "i/o error: {e}"),
            MapFormatError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            MapFormatError::Build(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl Error for MapFormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapFormatError::Io(e) => Some(e),
            MapFormatError::Build(e) => Some(e),
            MapFormatError::Parse(..) => None,
        }
    }
}

impl From<std::io::Error> for MapFormatError {
    fn from(e: std::io::Error) -> Self {
        MapFormatError::Io(e)
    }
}

impl From<BuildError> for MapFormatError {
    fn from(e: BuildError) -> Self {
        MapFormatError::Build(e)
    }
}

/// Writes a network in the text map format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_map<W: Write>(net: &RoadNetwork, mut w: W) -> Result<(), MapFormatError> {
    writeln!(w, "# roadnet map v1")?;
    writeln!(
        w,
        "# {} junctions, {} segments",
        net.junction_count(),
        net.segment_count()
    )?;
    for j in net.junctions() {
        writeln!(
            w,
            "junction {} {} {}",
            j.id().0,
            j.position().x,
            j.position().y
        )?;
    }
    for s in net.segments() {
        writeln!(
            w,
            "segment {} {} {} {}",
            s.id().0,
            s.a().0,
            s.b().0,
            s.length()
        )?;
    }
    Ok(())
}

/// Reads a network from the text map format.
///
/// # Errors
///
/// Fails on I/O errors, malformed lines, out-of-order ids, or structurally
/// invalid networks (self-loops, duplicates, unknown junctions).
pub fn read_map<R: BufRead>(r: R) -> Result<RoadNetwork, MapFormatError> {
    let mut b = RoadNetworkBuilder::new();
    let mut expected_segment = 0u32;
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line");
        match kind {
            "junction" => {
                let id: u32 = next_field(&mut parts, lineno, "junction id")?;
                let x: f64 = next_field(&mut parts, lineno, "x")?;
                let y: f64 = next_field(&mut parts, lineno, "y")?;
                let assigned = b.add_junction(Point::new(x, y));
                if assigned.0 != id {
                    return Err(MapFormatError::Parse(
                        lineno,
                        format!(
                            "junction ids must be dense and ordered: expected {}, got {id}",
                            assigned.0
                        ),
                    ));
                }
            }
            "segment" => {
                let id: u32 = next_field(&mut parts, lineno, "segment id")?;
                let a: u32 = next_field(&mut parts, lineno, "endpoint a")?;
                let bb: u32 = next_field(&mut parts, lineno, "endpoint b")?;
                if id != expected_segment {
                    return Err(MapFormatError::Parse(
                        lineno,
                        format!(
                            "segment ids must be dense and ordered: expected {expected_segment}, got {id}"
                        ),
                    ));
                }
                expected_segment += 1;
                let length: Option<f64> = match parts.next() {
                    Some(tok) => Some(tok.parse().map_err(|_| {
                        MapFormatError::Parse(lineno, format!("invalid length `{tok}`"))
                    })?),
                    None => None,
                };
                match length {
                    Some(len) => {
                        b.add_segment_with_length(JunctionId(a), JunctionId(bb), len)?;
                    }
                    None => {
                        b.add_segment(JunctionId(a), JunctionId(bb))?;
                    }
                }
            }
            other => {
                return Err(MapFormatError::Parse(
                    lineno,
                    format!("unknown record type `{other}`"),
                ));
            }
        }
    }
    Ok(b.build()?)
}

fn next_field<T: std::str::FromStr>(
    parts: &mut std::str::SplitWhitespace<'_>,
    lineno: usize,
    what: &str,
) -> Result<T, MapFormatError> {
    let tok = parts
        .next()
        .ok_or_else(|| MapFormatError::Parse(lineno, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| MapFormatError::Parse(lineno, format!("invalid {what} `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_city, irregular_city, IrregularConfig};

    #[test]
    fn roundtrip_grid() {
        let net = grid_city(4, 4, 100.0);
        let mut buf = Vec::new();
        write_map(&net, &mut buf).unwrap();
        let back = read_map(buf.as_slice()).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn roundtrip_irregular_with_curvy_lengths() {
        let net = irregular_city(&IrregularConfig {
            junctions: 80,
            segments: 100,
            seed: 9,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_map(&net, &mut buf).unwrap();
        let back = read_map(buf.as_slice()).unwrap();
        assert_eq!(net.segment_count(), back.segment_count());
        for (a, b) in net.segments().zip(back.segments()) {
            assert!((a.length() - b.length()).abs() < 1e-9);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\njunction 0 0 0\njunction 1 10 0\n# roads\nsegment 0 0 1\n";
        let net = read_map(text.as_bytes()).unwrap();
        assert_eq!(net.junction_count(), 2);
        assert_eq!(net.segment_count(), 1);
        assert_eq!(net.segment(crate::SegmentId(0)).length(), 10.0);
    }

    #[test]
    fn rejects_unknown_record() {
        let err = read_map("road 0 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, MapFormatError::Parse(1, _)), "{err}");
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let text = "junction 1 0 0\n";
        let err = read_map(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dense and ordered"), "{err}");

        let text = "junction 0 0 0\njunction 1 5 5\nsegment 3 0 1\n";
        let err = read_map(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dense and ordered"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_bad_numbers() {
        assert!(read_map("junction 0 1\n".as_bytes()).is_err());
        assert!(read_map("junction 0 x y\n".as_bytes()).is_err());
        assert!(
            read_map("junction 0 0 0\njunction 1 1 0\nsegment 0 0 1 banana\n".as_bytes()).is_err()
        );
    }

    #[test]
    fn rejects_structurally_invalid() {
        let text = "junction 0 0 0\nsegment 0 0 0\n";
        let err = read_map(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MapFormatError::Build(_)), "{err}");
    }

    #[test]
    fn rejects_empty_file() {
        assert!(matches!(
            read_map("# nothing\n".as_bytes()).unwrap_err(),
            MapFormatError::Build(BuildError::EmptyNetwork)
        ));
    }
}
