//! Synthetic road-network generators.
//!
//! The paper evaluates on a USGS extract of north-west Atlanta
//! (6,979 junctions, 9,187 segments). That data set is not redistributable,
//! so this module provides generators whose outputs match the *structural*
//! properties that matter to cloaking: junction/segment counts, mixed
//! junction degrees (residential grid + arterial diagonals + pruned edges)
//! and a realistic segment-length distribution. [`atlanta_like`] reproduces
//! the paper's exact counts.

use crate::builder::RoadNetworkBuilder;
use crate::geometry::Point;
use crate::graph::{JunctionId, RoadNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A rectangular grid city: `rows × cols` junctions, spaced `spacing`
/// meters apart, with all horizontal and vertical streets.
///
/// Produces `rows*cols` junctions and `rows*(cols-1) + cols*(rows-1)`
/// segments.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_city(rows: usize, cols: usize, spacing: f64) -> RoadNetwork {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    let mut b = RoadNetworkBuilder::with_capacity(rows * cols, 2 * rows * cols);
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(b.add_junction(Point::new(c as f64 * spacing, r as f64 * spacing)));
        }
    }
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_segment(at(r, c), at(r, c + 1)).expect("grid edge");
            }
            if r + 1 < rows {
                b.add_segment(at(r, c), at(r + 1, c)).expect("grid edge");
            }
        }
    }
    b.build().expect("non-empty grid")
}

/// A radial city: `rings` concentric rings crossed by `spokes` radial
/// avenues around a central junction, like a European town center.
///
/// # Panics
///
/// Panics if `rings == 0` or `spokes < 3`.
pub fn radial_city(rings: usize, spokes: usize, ring_spacing: f64) -> RoadNetwork {
    assert!(rings > 0, "need at least one ring");
    assert!(spokes >= 3, "need at least three spokes");
    let mut b = RoadNetworkBuilder::new();
    let center = b.add_junction(Point::new(0.0, 0.0));
    let mut ring_ids: Vec<Vec<JunctionId>> = Vec::new();
    for ring in 1..=rings {
        let radius = ring as f64 * ring_spacing;
        let mut ids = Vec::with_capacity(spokes);
        for k in 0..spokes {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / spokes as f64;
            ids.push(b.add_junction(Point::new(radius * theta.cos(), radius * theta.sin())));
        }
        ring_ids.push(ids);
    }
    // Ring roads.
    for ids in &ring_ids {
        for (k, &id) in ids.iter().enumerate() {
            b.add_segment(id, ids[(k + 1) % spokes]).expect("ring edge");
        }
    }
    // Spokes: center -> ring1 -> ring2 -> ...
    for (k, &first) in ring_ids[0].iter().enumerate() {
        b.add_segment(center, first).expect("spoke edge");
        for ring in 1..rings {
            b.add_segment(ring_ids[ring - 1][k], ring_ids[ring][k])
                .expect("spoke edge");
        }
    }
    b.build().expect("non-empty radial city")
}

/// Configuration for [`irregular_city`] / [`atlanta_like`].
#[derive(Debug, Clone)]
pub struct IrregularConfig {
    /// Target number of junctions.
    pub junctions: usize,
    /// Target number of segments. Must be achievable: at least
    /// `junctions - 1` (to stay connected) and at most roughly
    /// `2 * junctions` for a planar-ish street map.
    pub segments: usize,
    /// Block spacing in meters before perturbation.
    pub spacing: f64,
    /// Maximum random displacement of each junction, as a fraction of
    /// `spacing` (0.0 = perfect grid; 0.35 looks like a real city).
    pub jitter: f64,
    /// PRNG seed so maps are reproducible.
    pub seed: u64,
}

impl Default for IrregularConfig {
    fn default() -> Self {
        IrregularConfig {
            junctions: 1000,
            segments: 1400,
            spacing: 120.0,
            jitter: 0.3,
            seed: 42,
        }
    }
}

/// An irregular city: a jittered grid with random diagonal arterials added
/// and random residential streets removed until the requested
/// junction/segment counts are met, while keeping the network connected.
///
/// # Panics
///
/// Panics if the requested counts are infeasible (`segments <
/// junctions - 1`, or more segments than the underlying grid + diagonals
/// can supply).
pub fn irregular_city(cfg: &IrregularConfig) -> RoadNetwork {
    assert!(cfg.junctions >= 4, "need at least 4 junctions");
    assert!(
        cfg.segments >= cfg.junctions - 1,
        "cannot stay connected with fewer segments than junctions - 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Choose grid dimensions covering the junction count.
    let cols = (cfg.junctions as f64).sqrt().ceil() as usize;
    let rows = cfg.junctions.div_ceil(cols);
    let total = rows * cols;

    // Build candidate edge list on the jittered grid: orthogonal streets
    // plus one random diagonal per cell.
    let mut positions = Vec::with_capacity(total);
    for r in 0..rows {
        for c in 0..cols {
            let dx = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            let dy = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            positions.push(Point::new(
                c as f64 * cfg.spacing + dx,
                r as f64 * cfg.spacing + dy,
            ));
        }
    }
    // Keep exactly cfg.junctions of them (drop extras from the last row).
    positions.truncate(cfg.junctions);

    let index_of = |r: usize, c: usize| r * cols + c;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let a = index_of(r, c);
            if a >= cfg.junctions {
                continue;
            }
            if c + 1 < cols && index_of(r, c + 1) < cfg.junctions {
                edges.push((a, index_of(r, c + 1)));
            }
            if r + 1 < rows && index_of(r + 1, c) < cfg.junctions {
                edges.push((a, index_of(r + 1, c)));
            }
            // Diagonal arterial with 30% probability.
            if c + 1 < cols
                && r + 1 < rows
                && index_of(r + 1, c + 1) < cfg.junctions
                && rng.gen_bool(0.3)
            {
                edges.push((a, index_of(r + 1, c + 1)));
            }
        }
    }
    assert!(
        edges.len() >= cfg.segments,
        "requested {} segments but the lattice only offers {}; lower the count",
        cfg.segments,
        edges.len()
    );

    // Build a random spanning tree first (guarantees connectivity), then add
    // random extra edges until the segment target is met.
    edges.shuffle(&mut rng);
    let mut dsu = Dsu::new(cfg.junctions);
    let mut chosen = Vec::with_capacity(cfg.segments);
    let mut extras = Vec::new();
    for &(a, bq) in &edges {
        if dsu.union(a, bq) {
            chosen.push((a, bq));
        } else {
            extras.push((a, bq));
        }
    }
    // The lattice restricted to the first cfg.junctions vertices may be
    // disconnected at the frayed last row; stitch components with direct
    // connector roads.
    let mut roots: Vec<usize> = (0..cfg.junctions).map(|v| dsu.find(v)).collect();
    roots.sort_unstable();
    roots.dedup();
    if roots.len() > 1 {
        let base = roots[0];
        for &r in &roots[1..] {
            chosen.push((base, r));
            dsu.union(base, r);
        }
    }
    for &(a, bq) in &extras {
        if chosen.len() >= cfg.segments {
            break;
        }
        chosen.push((a, bq));
    }
    assert!(
        chosen.len() >= cfg.segments,
        "could not reach the requested segment count"
    );
    chosen.truncate(cfg.segments.max(chosen.len().min(cfg.segments)));

    let mut b = RoadNetworkBuilder::with_capacity(cfg.junctions, chosen.len());
    for &p in &positions {
        b.add_junction(p);
    }
    for (a, bq) in chosen {
        let (ja, jb) = (JunctionId(a as u32), JunctionId(bq as u32));
        if !b.has_segment(ja, jb) {
            // Curvy roads: 0-12% longer than straight-line.
            let straight = positions[a].distance(positions[bq]);
            let length = straight * (1.0 + rng.gen_range(0.0..0.12));
            b.add_segment_with_length(ja, jb, length).expect("edge");
        }
    }
    b.build().expect("non-empty irregular city")
}

/// The paper's evaluation map, structurally: 6,979 junctions and 9,187
/// segments like the USGS north-west Atlanta extract, deterministic for a
/// given seed.
///
/// This is the substitution documented in DESIGN.md §1: cloaking behaviour
/// depends on graph size/degree/length statistics, which this generator
/// reproduces, not on geographic fidelity.
pub fn atlanta_like(seed: u64) -> RoadNetwork {
    irregular_city(&IrregularConfig {
        junctions: 6979,
        segments: 9187,
        spacing: 110.0,
        jitter: 0.32,
        seed,
    })
}

/// A small fixed 5×5 demo network used by examples and documentation; 25
/// junctions, 40 segments.
pub fn demo_network() -> RoadNetwork {
    grid_city(5, 5, 100.0)
}

/// Minimal disjoint-set for the spanning-tree constructions (shared with
/// [`crate::citygen`]).
pub(crate) struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    pub(crate) fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Returns true when the two sets were merged (x, y were separate).
    pub(crate) fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.parent[rx] = ry;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let net = grid_city(4, 6, 100.0);
        assert_eq!(net.junction_count(), 24);
        assert_eq!(net.segment_count(), 4 * 5 + 6 * 3);
        assert!(net.is_connected());
    }

    #[test]
    fn grid_degrees() {
        let net = grid_city(3, 3, 100.0);
        let degrees: Vec<usize> = net.junctions().map(|j| j.degree()).collect();
        // Corners 2, edges 3, center 4.
        assert_eq!(degrees.iter().filter(|&&d| d == 2).count(), 4);
        assert_eq!(degrees.iter().filter(|&&d| d == 3).count(), 4);
        assert_eq!(degrees.iter().filter(|&&d| d == 4).count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn grid_rejects_zero() {
        let _ = grid_city(0, 3, 100.0);
    }

    #[test]
    fn radial_counts_and_connectivity() {
        let rings = 3;
        let spokes = 8;
        let net = radial_city(rings, spokes, 150.0);
        assert_eq!(net.junction_count(), 1 + rings * spokes);
        // rings*spokes ring edges + spokes*rings spoke edges.
        assert_eq!(net.segment_count(), 2 * rings * spokes);
        assert!(net.is_connected());
        // Center has degree = spokes.
        assert_eq!(net.junction(JunctionId(0)).degree(), spokes);
    }

    #[test]
    fn irregular_hits_exact_counts_and_stays_connected() {
        let cfg = IrregularConfig {
            junctions: 500,
            segments: 660,
            ..Default::default()
        };
        let net = irregular_city(&cfg);
        assert_eq!(net.junction_count(), 500);
        assert_eq!(net.segment_count(), 660);
        assert!(net.is_connected());
    }

    #[test]
    fn irregular_is_deterministic_per_seed() {
        let cfg = IrregularConfig {
            junctions: 200,
            segments: 260,
            seed: 7,
            ..Default::default()
        };
        let a = irregular_city(&cfg);
        let b = irregular_city(&cfg);
        assert_eq!(a, b);
        let c = irregular_city(&IrregularConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn atlanta_like_matches_paper_counts() {
        let net = atlanta_like(1);
        assert_eq!(net.junction_count(), 6979);
        assert_eq!(net.segment_count(), 9187);
        assert!(net.is_connected());
    }

    #[test]
    fn curvy_lengths_at_least_straight_line() {
        let net = irregular_city(&IrregularConfig {
            junctions: 100,
            segments: 130,
            ..Default::default()
        });
        for seg in net.segments() {
            let straight = net
                .junction(seg.a())
                .position()
                .distance(net.junction(seg.b()).position());
            assert!(
                seg.length() >= straight - 1e-9,
                "curvy length below straight-line"
            );
        }
    }

    #[test]
    fn demo_network_shape() {
        let net = demo_network();
        assert_eq!(net.junction_count(), 25);
        assert_eq!(net.segment_count(), 40);
    }
}
