//! Shortest-path routing over the road network.
//!
//! GTMobiSim-style trip planning uses length-weighted Dijkstra between
//! junctions; the cloaking algorithms additionally use unweighted
//! segment-hop BFS distances for analysis.

use crate::graph::{JunctionId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A shortest route between two junctions.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Junctions visited, from source to destination inclusive.
    pub junctions: Vec<JunctionId>,
    /// Segments traversed, one fewer than `junctions`.
    pub segments: Vec<SegmentId>,
    /// Total length in meters.
    pub length: f64,
}

impl Route {
    /// Number of segments on the route.
    pub fn hop_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether the route is a single point (source == destination).
    pub fn is_trivial(&self) -> bool {
        self.segments.is_empty()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    junction: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite non-NaN by
        // construction (segment lengths are finite and non-negative).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.junction.cmp(&self.junction))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Length-weighted Dijkstra shortest path from `src` to `dst`.
///
/// Returns `None` when `dst` is unreachable from `src`.
///
/// ```
/// use roadnet::{generate::grid_city, path::shortest_path, RoadNetwork, JunctionId};
/// let net = RoadNetwork::from(grid_city(3, 3, 100.0));
/// let r = shortest_path(&net, JunctionId(0), JunctionId(8)).unwrap();
/// assert_eq!(r.hop_count(), 4); // two right + two up in any order
/// assert!((r.length - 400.0).abs() < 1e-9);
/// ```
pub fn shortest_path(net: &RoadNetwork, src: JunctionId, dst: JunctionId) -> Option<Route> {
    let n = net.junction_count();
    if src.index() >= n || dst.index() >= n {
        return None;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(JunctionId, SegmentId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        junction: src.0,
    });
    while let Some(HeapEntry { dist: d, junction }) = heap.pop() {
        let j = JunctionId(junction);
        if d > dist[j.index()] {
            continue;
        }
        if j == dst {
            break;
        }
        for &s in net.incident_segments(j) {
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident segment endpoint");
            let nd = d + seg.length();
            if nd < dist[other.index()] {
                dist[other.index()] = nd;
                prev[other.index()] = Some((j, s));
                heap.push(HeapEntry {
                    dist: nd,
                    junction: other.0,
                });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut junctions = vec![dst];
    let mut segments = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, s) = prev[cur.index()].expect("path predecessor");
        junctions.push(p);
        segments.push(s);
        cur = p;
    }
    junctions.reverse();
    segments.reverse();
    Some(Route {
        junctions,
        segments,
        length: dist[dst.index()],
    })
}

/// Unweighted hop distance between two segments under the shared-junction
/// adjacency (0 for the same segment). `None` when unreachable.
pub fn segment_hop_distance(net: &RoadNetwork, from: SegmentId, to: SegmentId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let n = net.segment_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[from.index()] = 0;
    queue.push_back(from);
    while let Some(s) = queue.pop_front() {
        let d = dist[s.index()];
        for &nb in net.neighbor_segments_csr(s) {
            if dist[nb.index()] == usize::MAX {
                dist[nb.index()] = d + 1;
                if nb == to {
                    return Some(d + 1);
                }
                queue.push_back(nb);
            }
        }
    }
    None
}

/// All segments within `hops` segment-adjacency steps of `center`
/// (including `center` itself). Deterministic BFS order.
pub fn segments_within_hops(net: &RoadNetwork, center: SegmentId, hops: usize) -> Vec<SegmentId> {
    let n = net.segment_count();
    if center.index() >= n {
        return Vec::new();
    }
    let mut dist = vec![usize::MAX; n];
    let mut order = vec![center];
    let mut queue = std::collections::VecDeque::new();
    dist[center.index()] = 0;
    queue.push_back(center);
    while let Some(s) = queue.pop_front() {
        let d = dist[s.index()];
        if d == hops {
            continue;
        }
        for &nb in net.neighbor_segments_csr(s) {
            if dist[nb.index()] == usize::MAX {
                dist[nb.index()] = d + 1;
                order.push(nb);
                queue.push_back(nb);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RoadNetworkBuilder;
    use crate::generate::grid_city;
    use crate::geometry::Point;

    #[test]
    fn trivial_path() {
        let net = grid_city(2, 2, 50.0);
        let r = shortest_path(&net, JunctionId(0), JunctionId(0)).unwrap();
        assert!(r.is_trivial());
        assert_eq!(r.length, 0.0);
        assert_eq!(r.junctions, vec![JunctionId(0)]);
    }

    #[test]
    fn grid_path_length() {
        let net = grid_city(4, 4, 100.0);
        // Corner to corner: 3 + 3 hops of 100 m.
        let r = shortest_path(&net, JunctionId(0), JunctionId(15)).unwrap();
        assert_eq!(r.hop_count(), 6);
        assert!((r.length - 600.0).abs() < 1e-9);
        // Junction list is consistent with segment list.
        assert_eq!(r.junctions.len(), r.segments.len() + 1);
        for (i, &s) in r.segments.iter().enumerate() {
            let seg = net.segment(s);
            assert!(seg.touches(r.junctions[i]));
            assert!(seg.touches(r.junctions[i + 1]));
        }
    }

    #[test]
    fn prefers_shorter_detour() {
        // j0 --100-- j1 --100-- j2, plus a direct long road j0-j2 of 350.
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(100.0, 0.0));
        let j2 = b.add_junction(Point::new(200.0, 0.0));
        b.add_segment(j0, j1).unwrap();
        b.add_segment(j1, j2).unwrap();
        b.add_segment_with_length(j0, j2, 350.0).unwrap();
        let net = b.build().unwrap();
        let r = shortest_path(&net, j0, j2).unwrap();
        assert_eq!(r.hop_count(), 2);
        assert!((r.length - 200.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(1.0, 0.0));
        let j2 = b.add_junction(Point::new(10.0, 0.0));
        let j3 = b.add_junction(Point::new(11.0, 0.0));
        b.add_segment(j0, j1).unwrap();
        b.add_segment(j2, j3).unwrap();
        let net = b.build().unwrap();
        assert!(shortest_path(&net, j0, j3).is_none());
        assert!(segment_hop_distance(&net, SegmentId(0), SegmentId(1)).is_none());
    }

    #[test]
    fn out_of_range_ids_return_none() {
        let net = grid_city(2, 2, 10.0);
        assert!(shortest_path(&net, JunctionId(0), JunctionId(99)).is_none());
        assert!(segment_hop_distance(&net, SegmentId(99), SegmentId(0)).is_none());
    }

    #[test]
    fn segment_hops_on_grid() {
        let net = grid_city(3, 3, 100.0);
        assert_eq!(
            segment_hop_distance(&net, SegmentId(0), SegmentId(0)),
            Some(0)
        );
        for nb in net.neighbor_segments(SegmentId(0)) {
            assert_eq!(segment_hop_distance(&net, SegmentId(0), nb), Some(1));
        }
    }

    #[test]
    fn within_hops_monotone_growth() {
        let net = grid_city(5, 5, 100.0);
        let center = SegmentId(0);
        let mut prev = 0;
        for h in 0..5 {
            let got = segments_within_hops(&net, center, h).len();
            assert!(got >= prev, "hop ball must grow");
            prev = got;
        }
        assert_eq!(segments_within_hops(&net, center, 0), vec![center]);
        // Large radius covers the whole (connected) network.
        assert_eq!(
            segments_within_hops(&net, center, 100).len(),
            net.segment_count()
        );
    }

    #[test]
    fn within_hops_matches_hop_distance() {
        let net = grid_city(4, 4, 100.0);
        let center = SegmentId(5);
        let ball = segments_within_hops(&net, center, 2);
        for s in net.segment_ids() {
            let d = segment_hop_distance(&net, center, s).unwrap();
            assert_eq!(ball.contains(&s), d <= 2, "segment {s} distance {d}");
        }
    }
}

/// A* shortest path with the straight-line-distance heuristic.
///
/// Returns the same routes as [`shortest_path`] (the heuristic is
/// admissible because segment lengths are at least the Euclidean distance
/// between their endpoints) while expanding fewer junctions on large
/// maps.
///
/// ```
/// use roadnet::{generate::grid_city, path::{astar, shortest_path}, JunctionId};
/// let net = grid_city(6, 6, 100.0);
/// let a = astar(&net, JunctionId(0), JunctionId(35)).unwrap();
/// let d = shortest_path(&net, JunctionId(0), JunctionId(35)).unwrap();
/// assert!((a.length - d.length).abs() < 1e-9);
/// ```
pub fn astar(net: &RoadNetwork, src: JunctionId, dst: JunctionId) -> Option<Route> {
    let n = net.junction_count();
    if src.index() >= n || dst.index() >= n {
        return None;
    }
    let goal = net.junction(dst).position();
    let h = |j: JunctionId| net.junction(j).position().distance(goal);
    let mut g = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(JunctionId, SegmentId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    g[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: h(src),
        junction: src.0,
    });
    while let Some(HeapEntry { dist: f, junction }) = heap.pop() {
        let j = JunctionId(junction);
        if j == dst {
            break;
        }
        // Stale entry: the recorded g plus heuristic is smaller than the
        // popped f only when this entry was superseded.
        if f > g[j.index()] + h(j) + 1e-9 {
            continue;
        }
        for &s in net.incident_segments(j) {
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident segment endpoint");
            let ng = g[j.index()] + seg.length();
            if ng < g[other.index()] {
                g[other.index()] = ng;
                prev[other.index()] = Some((j, s));
                heap.push(HeapEntry {
                    dist: ng + h(other),
                    junction: other.0,
                });
            }
        }
    }
    if g[dst.index()].is_infinite() {
        return None;
    }
    let mut junctions = vec![dst];
    let mut segments = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, s) = prev[cur.index()].expect("path predecessor");
        junctions.push(p);
        segments.push(s);
        cur = p;
    }
    junctions.reverse();
    segments.reverse();
    Some(Route {
        junctions,
        segments,
        length: g[dst.index()],
    })
}

#[cfg(test)]
mod astar_tests {
    use super::*;
    use crate::generate::{grid_city, irregular_city, IrregularConfig};

    #[test]
    fn astar_matches_dijkstra_on_grid() {
        let net = grid_city(7, 7, 100.0);
        for (a, b) in [(0u32, 48u32), (3, 45), (10, 38), (0, 0)] {
            let d = shortest_path(&net, JunctionId(a), JunctionId(b)).unwrap();
            let s = astar(&net, JunctionId(a), JunctionId(b)).unwrap();
            assert!(
                (d.length - s.length).abs() < 1e-9,
                "{a}->{b}: dijkstra {} vs astar {}",
                d.length,
                s.length
            );
        }
    }

    #[test]
    fn astar_matches_dijkstra_on_irregular_maps() {
        for seed in 0..5 {
            let net = irregular_city(&IrregularConfig {
                junctions: 150,
                segments: 200,
                seed,
                ..Default::default()
            });
            for pair in [(0u32, 149u32), (10, 90), (77, 3)] {
                let d = shortest_path(&net, JunctionId(pair.0), JunctionId(pair.1)).unwrap();
                let s = astar(&net, JunctionId(pair.0), JunctionId(pair.1)).unwrap();
                assert!(
                    (d.length - s.length).abs() < 1e-6,
                    "seed {seed} {pair:?}: {} vs {}",
                    d.length,
                    s.length
                );
            }
        }
    }

    #[test]
    fn astar_unreachable_and_out_of_range() {
        let net = grid_city(3, 3, 100.0);
        assert!(astar(&net, JunctionId(0), JunctionId(99)).is_none());
    }
}
