//! The road-network graph model: junctions (intersections) connected by
//! road segments.
//!
//! This mirrors the paper's Figure 1 model: "a set of segments as the
//! connections of adjacent junctions and a set of junctions as the
//! intersections of segments". Cloaking regions are *sets of segments*, so
//! the segment-adjacency relation (two segments sharing a junction) is the
//! workhorse of the whole system.

use crate::geometry::{BoundingBox, Point};
use crate::index::{GraphIndex, IndexCell, LandmarkTable, ReachIndex};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a junction (graph vertex). Dense, assigned by the builder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JunctionId(pub u32);

/// Identifier of a road segment (graph edge). Dense, assigned by the builder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl JunctionId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A junction: an intersection point of road segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Junction {
    id: JunctionId,
    position: Point,
    /// Segments incident to this junction, in insertion order.
    incident: Vec<SegmentId>,
}

impl Junction {
    pub(crate) fn new(id: JunctionId, position: Point) -> Self {
        Junction {
            id,
            position,
            incident: Vec::new(),
        }
    }

    /// Like [`new`](Self::new) but with the incidence list preallocated to
    /// its exact final size (generators that count degrees up front avoid
    /// regrowing one small `Vec` per junction on 100k-segment maps).
    pub(crate) fn with_capacity(id: JunctionId, position: Point, degree: usize) -> Self {
        Junction {
            id,
            position,
            incident: Vec::with_capacity(degree),
        }
    }

    /// The junction id.
    pub fn id(&self) -> JunctionId {
        self.id
    }

    /// The junction position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Segments meeting at this junction.
    pub fn incident_segments(&self) -> &[SegmentId] {
        &self.incident
    }

    /// Number of incident segments (the junction degree).
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    pub(crate) fn push_incident(&mut self, s: SegmentId) {
        self.incident.push(s);
    }
}

/// A road segment connecting two adjacent junctions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    id: SegmentId,
    a: JunctionId,
    b: JunctionId,
    length: f64,
}

impl Segment {
    pub(crate) fn new(id: SegmentId, a: JunctionId, b: JunctionId, length: f64) -> Self {
        Segment { id, a, b, length }
    }

    /// The segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// First endpoint junction.
    pub fn a(&self) -> JunctionId {
        self.a
    }

    /// Second endpoint junction.
    pub fn b(&self) -> JunctionId {
        self.b
    }

    /// Both endpoints as a pair.
    pub fn endpoints(&self) -> (JunctionId, JunctionId) {
        (self.a, self.b)
    }

    /// Road length of the segment in meters.
    ///
    /// This may exceed the straight-line distance between the endpoints
    /// (curvy roads); generators produce lengths ≥ the Euclidean distance.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Given one endpoint, returns the other.
    ///
    /// Returns `None` if `j` is not an endpoint of this segment.
    pub fn other_endpoint(&self, j: JunctionId) -> Option<JunctionId> {
        if j == self.a {
            Some(self.b)
        } else if j == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `j` is an endpoint of this segment.
    pub fn touches(&self, j: JunctionId) -> bool {
        j == self.a || j == self.b
    }
}

/// An immutable road network: junctions, segments and their incidence.
///
/// Construct one through [`crate::builder::RoadNetworkBuilder`] or a
/// generator in [`crate::generate`].
///
/// Besides the per-junction incidence lists, the network carries two
/// flat index structures built once at construction and shared by every
/// reader:
///
/// * a CSR (compressed-sparse-row) **segment adjacency** table, so
///   [`neighbor_segments_csr`](RoadNetwork::neighbor_segments_csr)
///   returns a borrowed slice instead of allocating a fresh `Vec` on
///   every cloak-region expansion step;
/// * a flat **junction → incident segments** view
///   ([`incident_segments`](RoadNetwork::incident_segments)) backing the
///   Dijkstra/BFS loops with one contiguous array.
///
/// ```
/// use roadnet::generate::grid_city;
/// let net = roadnet::RoadNetwork::from(grid_city(4, 4, 100.0));
/// assert_eq!(net.junction_count(), 16);
/// assert_eq!(net.segment_count(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    junctions: Vec<Junction>,
    segments: Vec<Segment>,
    // The four index fields below are derived state: when the serde
    // shim is swapped for the real crate, they must be `#[serde(skip)]`
    // and rebuilt through `from_parts` on deserialize — accepting them
    // from the wire would let a crafted payload desynchronize the CSR
    // table from the junction incidence lists.
    /// CSR offsets into `adj_list`: the neighbors of segment `s` are
    /// `adj_list[adj_offsets[s] .. adj_offsets[s + 1]]`.
    adj_offsets: Vec<u32>,
    /// CSR payload: neighbor segments, in the same deterministic order
    /// (by endpoint, then insertion order, first occurrence wins) the
    /// allocating `neighbor_segments` historically produced.
    adj_list: Vec<SegmentId>,
    /// Flat offsets into `inc_list`: segments incident to junction `j`
    /// are `inc_list[inc_offsets[j] .. inc_offsets[j + 1]]`.
    inc_offsets: Vec<u32>,
    /// Flat payload of the junction → incident-segments view.
    inc_list: Vec<SegmentId>,
    /// Lazily built [`GraphIndex`] (landmark distances + packed
    /// reachability), shared by every reader of this network. Derived
    /// state like the CSR tables: clones start empty and rebuild on
    /// demand, equality ignores it, and with the real serde it must be
    /// `#[serde(skip)]` like the fields above.
    graph_index: IndexCell,
}

impl RoadNetwork {
    pub(crate) fn from_parts(junctions: Vec<Junction>, segments: Vec<Segment>) -> Self {
        // Flat junction → incident view.
        let mut inc_offsets = Vec::with_capacity(junctions.len() + 1);
        let mut inc_list = Vec::with_capacity(segments.len() * 2);
        inc_offsets.push(0u32);
        for j in &junctions {
            inc_list.extend_from_slice(j.incident_segments());
            inc_offsets.push(inc_list.len() as u32);
        }
        // CSR segment adjacency. The order must stay bit-identical to
        // the historical `neighbor_segments` walk (endpoint a then b,
        // incidence order, duplicates dropped at first occurrence):
        // RPLE pre-assignment consumes neighbors in this order, so any
        // reordering would silently change every RPLE receipt.
        let mut adj_offsets = Vec::with_capacity(segments.len() + 1);
        let mut adj_list = Vec::new();
        let mut mark = vec![u32::MAX; segments.len()];
        adj_offsets.push(0u32);
        for seg in &segments {
            let s = seg.id();
            for j in [seg.a, seg.b] {
                for &n in junctions[j.index()].incident_segments() {
                    if n != s && mark[n.index()] != s.0 {
                        mark[n.index()] = s.0;
                        adj_list.push(n);
                    }
                }
            }
            adj_offsets.push(adj_list.len() as u32);
        }
        RoadNetwork {
            junctions,
            segments,
            adj_offsets,
            adj_list,
            inc_offsets,
            inc_list,
            graph_index: IndexCell::default(),
        }
    }

    /// The network's [`GraphIndex`] (landmark distance table + packed
    /// bounded-hop reachability), built once on first use and shared by
    /// every subsequent caller.
    ///
    /// The index is read-only derived state: it accelerates queries
    /// (goal-directed LBS search, adversary movement pruning) without
    /// influencing any cloaking draw, so receipt streams are
    /// byte-identical with or without it.
    ///
    /// ```
    /// use roadnet::{grid_city, JunctionId};
    /// let net = grid_city(4, 4, 100.0);
    /// let lm = net.graph_index().landmarks();
    /// assert!(lm.count() >= 1);
    /// assert_eq!(lm.lower_bound(JunctionId(2), JunctionId(2)), 0.0);
    /// ```
    pub fn graph_index(&self) -> &GraphIndex {
        self.graph_index_arc()
    }

    fn graph_index_arc(&self) -> &Arc<GraphIndex> {
        self.graph_index
            .0
            .get_or_init(|| Arc::new(GraphIndex::build(self)))
    }

    /// Installs an explicitly built [`GraphIndex`] (e.g. one built with
    /// a parallel worker pool and a city-scale [`crate::IndexBudget`])
    /// into this network's lazy cell. Returns `false` — and changes
    /// nothing — if an index was already built or installed.
    pub fn install_graph_index(&self, index: GraphIndex) -> bool {
        self.graph_index.0.set(Arc::new(index)).is_ok()
    }

    /// A copy of this network whose clone *shares* the already-built
    /// [`GraphIndex`] instead of rebuilding it from scratch on first
    /// use (plain `clone()` starts with an empty index cell — at city
    /// scale that rebuild costs seconds per clone). Builds the index
    /// first if this network has none yet. Equality and serialization
    /// semantics are unchanged: the shared index is derived state that
    /// never feeds a cloaking draw.
    pub fn share_index(&self) -> RoadNetwork {
        let index = Arc::clone(self.graph_index_arc());
        let mut copy = self.clone();
        copy.graph_index = IndexCell::prebuilt(index);
        copy
    }

    /// Shorthand for [`graph_index`](Self::graph_index)`().landmarks()`.
    pub fn landmark_table(&self) -> &LandmarkTable {
        self.graph_index().landmarks()
    }

    /// The packed reachability index for a hop budget, built on first
    /// use and cached per budget (see [`GraphIndex::reach`]). Beyond
    /// the index budget's hop cap this still builds — uncached, every
    /// call — so prefer [`cached_reach_index`](Self::cached_reach_index)
    /// where a fallback path exists.
    pub fn reach_index(&self, hops: usize) -> Arc<ReachIndex> {
        self.graph_index().reach(self, hops)
    }

    /// The packed reachability index for a hop budget, or `None` when
    /// `hops` exceeds the budget the index was built with (see
    /// [`GraphIndex::reach_cached`]) — the signal to use a BFS fallback
    /// instead of paying a quadratic-memory packed build.
    pub fn cached_reach_index(&self, hops: usize) -> Option<Arc<ReachIndex>> {
        self.graph_index().reach_cached(self, hops)
    }

    /// Number of junctions.
    pub fn junction_count(&self) -> usize {
        self.junctions.len()
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Looks up a junction.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this network never are).
    pub fn junction(&self, id: JunctionId) -> &Junction {
        &self.junctions[id.index()]
    }

    /// Looks up a segment.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this network never are).
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// Fallible junction lookup.
    pub fn get_junction(&self, id: JunctionId) -> Option<&Junction> {
        self.junctions.get(id.index())
    }

    /// Fallible segment lookup.
    pub fn get_segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(id.index())
    }

    /// Iterates over all junctions.
    pub fn junctions(&self) -> impl ExactSizeIterator<Item = &Junction> {
        self.junctions.iter()
    }

    /// Iterates over all segments.
    pub fn segments(&self) -> impl ExactSizeIterator<Item = &Segment> {
        self.segments.iter()
    }

    /// Iterates over all segment ids.
    pub fn segment_ids(&self) -> impl ExactSizeIterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Iterates over all junction ids.
    pub fn junction_ids(&self) -> impl ExactSizeIterator<Item = JunctionId> {
        (0..self.junctions.len() as u32).map(JunctionId)
    }

    /// Segments adjacent to `s`: all segments sharing a junction with `s`,
    /// excluding `s` itself. Order is deterministic (by endpoint, then
    /// insertion order); duplicates are removed.
    ///
    /// This relation defines the candidate frontier of a cloaking region.
    /// Allocates a fresh `Vec`; hot paths should use
    /// [`neighbor_segments_csr`](Self::neighbor_segments_csr), which
    /// returns the same ids in the same order as a borrowed slice.
    pub fn neighbor_segments(&self, s: SegmentId) -> Vec<SegmentId> {
        self.neighbor_segments_csr(s).to_vec()
    }

    /// Segments adjacent to `s`, served from the CSR adjacency table
    /// built at construction: zero allocation, same ids and order as
    /// [`neighbor_segments`](Self::neighbor_segments).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this network never are).
    pub fn neighbor_segments_csr(&self, s: SegmentId) -> &[SegmentId] {
        let i = s.index();
        let (lo, hi) = (self.adj_offsets[i], self.adj_offsets[i + 1]);
        &self.adj_list[lo as usize..hi as usize]
    }

    /// Segments incident to junction `j`, served from the flat
    /// junction → incidence view (equivalent to
    /// `self.junction(j).incident_segments()` without the per-junction
    /// pointer chase).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from this network never are).
    pub fn incident_segments(&self, j: JunctionId) -> &[SegmentId] {
        let i = j.index();
        let (lo, hi) = (self.inc_offsets[i], self.inc_offsets[i + 1]);
        &self.inc_list[lo as usize..hi as usize]
    }

    /// Whether two distinct segments share a junction.
    pub fn segments_adjacent(&self, a: SegmentId, b: SegmentId) -> bool {
        if a == b {
            return false;
        }
        let sa = self.segment(a);
        let sb = self.segment(b);
        sb.touches(sa.a) || sb.touches(sa.b)
    }

    /// Midpoint of a segment in the plane (used for rendering and for
    /// placing users along roads).
    pub fn segment_midpoint(&self, s: SegmentId) -> Point {
        let seg = self.segment(s);
        self.junction(seg.a)
            .position()
            .midpoint(self.junction(seg.b).position())
    }

    /// A point at fraction `t ∈ [0,1]` along segment `s` from endpoint `a`.
    pub fn point_along(&self, s: SegmentId, t: f64) -> Point {
        let seg = self.segment(s);
        self.junction(seg.a)
            .position()
            .lerp(self.junction(seg.b).position(), t.clamp(0.0, 1.0))
    }

    /// Bounding box around a set of segments (their endpoints).
    pub fn segments_bounding_box<I: IntoIterator<Item = SegmentId>>(&self, ids: I) -> BoundingBox {
        let mut bb = BoundingBox::empty();
        for s in ids {
            let seg = self.segment(s);
            bb.expand(self.junction(seg.a).position());
            bb.expand(self.junction(seg.b).position());
        }
        bb
    }

    /// Bounding box of the whole network.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::around(self.junctions.iter().map(|j| j.position()))
    }

    /// Sum of the lengths of the given segments.
    pub fn total_length<I: IntoIterator<Item = SegmentId>>(&self, ids: I) -> f64 {
        ids.into_iter().map(|s| self.segment(s).length()).sum()
    }

    /// Whether the sub-graph induced by `ids` (as segments) is connected
    /// under the shared-junction relation. An empty set is considered
    /// connected.
    pub fn segments_connected(&self, ids: &[SegmentId]) -> bool {
        if ids.len() <= 1 {
            return true;
        }
        // Memory stays O(|ids|), not O(segment_count): small regions on
        // large networks are the common caller (cloak peeling probes).
        let inset: std::collections::HashSet<SegmentId> = ids.iter().copied().collect();
        let mut seen = std::collections::HashSet::with_capacity(inset.len());
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(s) = stack.pop() {
            for &nb in self.neighbor_segments_csr(s) {
                if inset.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == ids.len()
    }

    /// Connected components of the whole network, as sets of junction ids.
    pub fn junction_components(&self) -> Vec<Vec<JunctionId>> {
        let n = self.junctions.len();
        let mut comp = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            comp[start] = cid;
            while let Some(j) = stack.pop() {
                members.push(JunctionId(j as u32));
                for &s in self.junctions[j].incident_segments() {
                    let seg = self.segment(s);
                    let other = if seg.a.index() == j { seg.b } else { seg.a };
                    if comp[other.index()] == usize::MAX {
                        comp[other.index()] = cid;
                        stack.push(other.index());
                    }
                }
            }
            components.push(members);
        }
        components
    }

    /// Whether the whole network is a single connected component.
    pub fn is_connected(&self) -> bool {
        self.junction_components().len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RoadNetworkBuilder;

    /// A triangle with a tail:  j0-j1, j1-j2, j2-j0, j2-j3.
    fn triangle_with_tail() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(100.0, 0.0));
        let j2 = b.add_junction(Point::new(50.0, 80.0));
        let j3 = b.add_junction(Point::new(50.0, 200.0));
        b.add_segment(j0, j1).unwrap();
        b.add_segment(j1, j2).unwrap();
        b.add_segment(j2, j0).unwrap();
        b.add_segment(j2, j3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let net = triangle_with_tail();
        assert_eq!(net.junction_count(), 4);
        assert_eq!(net.segment_count(), 4);
        assert_eq!(
            net.segment(SegmentId(0)).endpoints(),
            (JunctionId(0), JunctionId(1))
        );
        assert!(net.get_segment(SegmentId(99)).is_none());
        assert!(net.get_junction(JunctionId(99)).is_none());
    }

    #[test]
    fn neighbor_segments_share_a_junction() {
        let net = triangle_with_tail();
        // s0 = j0-j1 touches s1 (j1-j2) and s2 (j2-j0).
        let n0 = net.neighbor_segments(SegmentId(0));
        assert_eq!(n0.len(), 2);
        assert!(n0.contains(&SegmentId(1)));
        assert!(n0.contains(&SegmentId(2)));
        // s3 = j2-j3 touches s1 and s2 through j2.
        let n3 = net.neighbor_segments(SegmentId(3));
        assert_eq!(n3.len(), 2);
        for n in n3 {
            assert!(net.segments_adjacent(SegmentId(3), n));
        }
    }

    #[test]
    fn neighbor_list_has_no_duplicates_or_self() {
        let net = triangle_with_tail();
        for s in net.segment_ids() {
            let ns = net.neighbor_segments(s);
            let mut dedup = ns.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), ns.len(), "duplicates in neighbors of {s}");
            assert!(!ns.contains(&s));
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let net = triangle_with_tail();
        for a in net.segment_ids() {
            for b in net.segment_ids() {
                assert_eq!(
                    net.segments_adjacent(a, b),
                    net.segments_adjacent(b, a),
                    "asymmetric adjacency {a} {b}"
                );
            }
        }
    }

    #[test]
    fn self_adjacency_is_false() {
        let net = triangle_with_tail();
        for s in net.segment_ids() {
            assert!(!net.segments_adjacent(s, s));
        }
    }

    #[test]
    fn other_endpoint_roundtrip() {
        let net = triangle_with_tail();
        for seg in net.segments() {
            assert_eq!(seg.other_endpoint(seg.a()), Some(seg.b()));
            assert_eq!(seg.other_endpoint(seg.b()), Some(seg.a()));
        }
        assert_eq!(
            net.segment(SegmentId(0)).other_endpoint(JunctionId(3)),
            None
        );
    }

    #[test]
    fn lengths_match_geometry_for_straight_segments() {
        let net = triangle_with_tail();
        let s0 = net.segment(SegmentId(0));
        assert!((s0.length() - 100.0).abs() < 1e-9);
        let total = net.total_length(net.segment_ids());
        assert!(total > 0.0);
    }

    #[test]
    fn midpoint_and_point_along() {
        let net = triangle_with_tail();
        let mid = net.segment_midpoint(SegmentId(0));
        assert_eq!(mid, Point::new(50.0, 0.0));
        assert_eq!(net.point_along(SegmentId(0), 0.0), Point::new(0.0, 0.0));
        assert_eq!(net.point_along(SegmentId(0), 1.0), Point::new(100.0, 0.0));
        // Clamped.
        assert_eq!(net.point_along(SegmentId(0), 2.0), Point::new(100.0, 0.0));
    }

    #[test]
    fn connectivity_checks() {
        let net = triangle_with_tail();
        assert!(net.is_connected());
        assert!(net.segments_connected(&[]));
        assert!(net.segments_connected(&[SegmentId(3)]));
        assert!(net.segments_connected(&[SegmentId(0), SegmentId(1)]));
        // s0 (j0-j1) and s3 (j2-j3) do not touch.
        assert!(!net.segments_connected(&[SegmentId(0), SegmentId(3)]));
        assert!(net.segments_connected(&[SegmentId(0), SegmentId(1), SegmentId(3)]));
    }

    #[test]
    fn junction_components_on_disconnected_graph() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(1.0, 0.0));
        let j2 = b.add_junction(Point::new(10.0, 0.0));
        let j3 = b.add_junction(Point::new(11.0, 0.0));
        b.add_segment(j0, j1).unwrap();
        b.add_segment(j2, j3).unwrap();
        let net = b.build().unwrap();
        assert!(!net.is_connected());
        assert_eq!(net.junction_components().len(), 2);
    }

    #[test]
    fn bounding_boxes() {
        let net = triangle_with_tail();
        let bb = net.bounding_box();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(100.0, 200.0));
        let partial = net.segments_bounding_box([SegmentId(0)]);
        assert_eq!(partial.max, Point::new(100.0, 0.0));
    }

    #[test]
    fn display_ids() {
        assert_eq!(SegmentId(18).to_string(), "s18");
        assert_eq!(JunctionId(3).to_string(), "j3");
    }

    #[test]
    fn share_index_reuses_the_built_index_while_plain_clone_does_not() {
        let net = triangle_with_tail();
        let _ = net.graph_index();
        let shared = net.share_index();
        // Same Arc, no rebuild.
        assert!(std::sync::Arc::ptr_eq(
            net.graph_index_arc(),
            shared.graph_index_arc()
        ));
        // A plain clone starts with an empty cell (it would rebuild on
        // demand) and still compares equal: the index is derived state.
        let plain = net.clone();
        assert!(plain.graph_index.0.get().is_none());
        assert_eq!(plain, net);
        assert_eq!(shared, net);
    }

    #[test]
    fn share_index_builds_first_when_needed() {
        let net = triangle_with_tail();
        assert!(net.graph_index.0.get().is_none());
        let shared = net.share_index();
        assert!(net.graph_index.0.get().is_some());
        assert!(std::sync::Arc::ptr_eq(
            net.graph_index_arc(),
            shared.graph_index_arc()
        ));
    }

    #[test]
    fn install_graph_index_is_first_writer_wins() {
        let net = triangle_with_tail();
        let custom = GraphIndex::build_with(
            &net,
            &crate::index::IndexBudget {
                landmarks: 2,
                reach_hop_cap: 1,
            },
            1,
        );
        assert!(net.install_graph_index(custom));
        assert_eq!(net.graph_index().landmarks().count(), 2);
        assert!(net.cached_reach_index(1).is_some());
        assert!(net.cached_reach_index(2).is_none());
        // Second install is rejected, first index stays.
        let other = GraphIndex::build(&net);
        assert!(!net.install_graph_index(other));
        assert_eq!(net.graph_index().landmarks().count(), 2);
    }
}
