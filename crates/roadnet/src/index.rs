//! Spatial and graph indexes over a road network.
//!
//! Two families live here:
//!
//! * [`SegmentIndex`] — a uniform-grid *spatial* index, used by the trace
//!   generator (snap a Gaussian sample to the nearest road) and the
//!   renderers (cull segments outside the viewport);
//! * [`GraphIndex`] — a read-only, built-once *graph* index: an
//!   ALT-style [`LandmarkTable`] of exact road distances from a handful
//!   of far-apart junctions, and word-packed bounded-hop
//!   [`ReachIndex`] reachability masks. Query-time consumers (the LBS
//!   candidate search, the temporal adversary's movement model) trade
//!   per-query graph traversals for lookups into these tables — the
//!   amortize-the-setup pattern the ROADMAP's hardware-speed goal calls
//!   for. The index is derived state: it never feeds the cloaking
//!   draws, so receipts are byte-identical with or without it.
//!
//! [`RoadNetwork::graph_index`] builds the graph index lazily (behind a
//! `OnceLock`) on first use and shares it with every reader.

use crate::geometry::{point_segment_distance, BoundingBox, Point};
use crate::graph::{JunctionId, RoadNetwork, SegmentId};
use std::sync::{Arc, OnceLock};

/// A uniform-grid spatial index over the segments of a road network.
///
/// ```
/// use roadnet::{generate::grid_city, index::SegmentIndex, geometry::Point};
/// let net = grid_city(5, 5, 100.0);
/// let idx = SegmentIndex::build(&net, 64.0);
/// let (seg, d) = idx.nearest_segment(&net, Point::new(151.0, 207.0)).unwrap();
/// assert!(d <= 10.0);
/// # let _ = seg;
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    bounds: BoundingBox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// For each grid cell, the segments whose bounding box overlaps it.
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds the index with the given cell size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive or the network has no
    /// junctions.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bounds = net.bounding_box();
        assert!(!bounds.is_empty(), "cannot index an empty network");
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let mut cells = vec![Vec::new(); cols * rows];
        let mut index = SegmentIndex {
            bounds,
            cell: cell_size,
            cols,
            rows,
            cells: Vec::new(),
        };
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            let bb = BoundingBox::from_corners(pa, pb);
            let (c0, r0) = index.cell_of(bb.min);
            let (c1, r1) = index.cell_of(bb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(seg.id());
                }
            }
        }
        index.cells = cells;
        index
    }

    /// The indexed area.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.bounds.min.x) / self.cell).floor();
        let r = ((p.y - self.bounds.min.y) / self.cell).floor();
        (
            (c.max(0.0) as usize).min(self.cols - 1),
            (r.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// Segments whose bounding boxes intersect the query box. May contain
    /// duplicates-free deterministic order.
    pub fn segments_in_box(&self, query: BoundingBox) -> Vec<SegmentId> {
        if query.is_empty() {
            return Vec::new();
        }
        let (c0, r0) = self.cell_of(query.min);
        let (c1, r1) = self.cell_of(query.max);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &s in &self.cells[r * self.cols + c] {
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// The segment nearest to `p` and its distance, or `None` for a network
    /// with no segments.
    ///
    /// Searches outward ring by ring, so the cost is proportional to the
    /// local density rather than the network size.
    pub fn nearest_segment(&self, net: &RoadNetwork, p: Point) -> Option<(SegmentId, f64)> {
        if net.segment_count() == 0 {
            return None;
        }
        let (pc, pr) = self.cell_of(p);
        let max_ring = self.cols.max(self.rows);
        let mut best: Option<(SegmentId, f64)> = None;
        for ring in 0..=max_ring {
            // Once we have a candidate, one extra ring is enough to make the
            // result exact (a closer segment can only live one ring further
            // than the ring where the candidate was found).
            if let Some((_, d)) = best {
                if d <= (ring.saturating_sub(1)) as f64 * self.cell {
                    break;
                }
            }
            let mut any_cell = false;
            for (c, r) in ring_cells(pc, pr, ring, self.cols, self.rows) {
                any_cell = true;
                for &s in &self.cells[r * self.cols + c] {
                    let seg = net.segment(s);
                    let d = point_segment_distance(
                        p,
                        net.junction(seg.a()).position(),
                        net.junction(seg.b()).position(),
                    );
                    if best.is_none_or(|(bs, bd)| d < bd || (d == bd && s < bs)) {
                        best = Some((s, d));
                    }
                }
            }
            if !any_cell && ring > 0 && best.is_some() {
                break;
            }
        }
        best
    }
}

/// The cells on the square ring at Chebyshev distance `ring` from `(pc,
/// pr)`, clipped to the grid.
fn ring_cells(pc: usize, pr: usize, ring: usize, cols: usize, rows: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (pc, pr, ring) = (pc as isize, pr as isize, ring as isize);
    let inside =
        |c: isize, r: isize| c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows;
    if ring == 0 {
        if inside(pc, pr) {
            out.push((pc as usize, pr as usize));
        }
        return out;
    }
    for c in (pc - ring)..=(pc + ring) {
        for r in [pr - ring, pr + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    for r in (pr - ring + 1)..=(pr + ring - 1) {
        for c in [pc - ring, pc + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    out
}

/// Number of landmarks a [`GraphIndex`] selects by default. Sixteen
/// far-apart junctions give tight triangle-inequality bounds on maps up
/// to the paper's Atlanta-scale evaluation network while keeping the
/// table at `16 × junction_count` doubles.
pub const DEFAULT_LANDMARKS: usize = 16;

/// Hop counts up to this value get their [`ReachIndex`] cached inside
/// the [`GraphIndex`]; larger (pathological) hop budgets are built on
/// demand without caching.
pub const MAX_CACHED_HOPS: usize = 16;

/// Build budget for a [`GraphIndex`]: how many landmarks to select and
/// up to which hop count reach masks may be cached.
///
/// The defaults reproduce the unbudgeted build
/// ([`DEFAULT_LANDMARKS`] / [`MAX_CACHED_HOPS`]). City-scale maps cap
/// these explicitly instead of timing out or ballooning memory: a
/// packed reach mask costs `segment_count² / 8` bytes, which at 100k
/// segments is 1.25 GB per hop budget — capping `reach_hop_cap` (even
/// to 0) makes consumers fall back to their BFS paths instead of
/// silently building such a mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexBudget {
    /// Landmarks the [`LandmarkTable`] selects (farthest-point sampling
    /// stops early on tiny maps regardless).
    pub landmarks: usize,
    /// Largest hop count for which [`GraphIndex::reach_cached`] will
    /// build and cache a [`ReachIndex`].
    pub reach_hop_cap: usize,
}

impl Default for IndexBudget {
    fn default() -> Self {
        IndexBudget {
            landmarks: DEFAULT_LANDMARKS,
            reach_hop_cap: MAX_CACHED_HOPS,
        }
    }
}

/// Resolves a worker-count knob: `0` means one worker per available
/// core; the result is clamped to `[1, jobs]`.
fn effective_workers(requested: usize, jobs: usize) -> usize {
    let req = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    };
    req.clamp(1, jobs.max(1))
}

/// ALT-style landmark distance table: exact road distances from a small
/// set of far-apart junctions (selected by farthest-point sampling) to
/// every junction of the network.
///
/// By the triangle inequality, for any landmark `l` and junctions `a`,
/// `b`: `|d(l,a) − d(l,b)| ≤ d(a,b) ≤ d(l,a) + d(l,b)` — so the table
/// yields instant lower *and* upper bounds on any road distance, which
/// the LBS candidate search uses to direct and terminate its Dijkstra
/// early without changing any answer.
///
/// Farthest-point sampling treats unreachable junctions as infinitely
/// far, so on a disconnected map each component receives a landmark
/// before any component gets its second (up to the landmark budget).
///
/// ```
/// use roadnet::{grid_city, index::LandmarkTable, path::shortest_path, JunctionId};
/// let net = grid_city(6, 6, 100.0);
/// let table = LandmarkTable::build(&net, 8);
/// let (a, b) = (JunctionId(3), JunctionId(31));
/// let exact = shortest_path(&net, a, b).unwrap().length;
/// assert!(table.lower_bound(a, b) <= exact + 1e-9);
/// assert!(table.upper_bound(a, b) >= exact - 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LandmarkTable {
    landmarks: Vec<JunctionId>,
    /// Row-major `landmarks.len() × junction_count` distances;
    /// `f64::INFINITY` marks a junction unreachable from the landmark.
    dist: Vec<f64>,
    junctions: usize,
}

impl LandmarkTable {
    /// Builds a table of (at most) `count` landmarks with a single
    /// worker; see [`build_with`](Self::build_with).
    pub fn build(net: &RoadNetwork, count: usize) -> Self {
        Self::build_with(net, count, 1)
    }

    /// Builds a table of (at most) `count` landmarks by farthest-point
    /// sampling: the first landmark is junction 0, each next one is the
    /// junction farthest (in hops) from all landmarks chosen so far
    /// (unreachable counts as farthest, covering disconnected
    /// components first).
    ///
    /// The build is two-phase. Selection runs a cheap serial BFS pass
    /// per landmark (hop metric — selection only needs *far apart*, not
    /// exact meters, and each pick depends on the previous one, so this
    /// phase is inherently sequential). The exact length-weighted
    /// Dijkstra rows — the build-time bottleneck at city scale — are
    /// then computed across `workers` scoped threads (`0` = one per
    /// core), each writing its own disjoint row of the flat distance
    /// arena: the table is bit-identical regardless of the worker
    /// count.
    pub fn build_with(net: &RoadNetwork, count: usize, workers: usize) -> Self {
        let n = net.junction_count();
        let mut table = LandmarkTable {
            landmarks: Vec::new(),
            dist: Vec::new(),
            junctions: n,
        };
        if n == 0 || count == 0 {
            return table;
        }
        // Phase 1: serial hop-metric farthest-point selection.
        let mut row = vec![u32::MAX; n];
        let mut min_to_landmarks = vec![u32::MAX; n];
        let mut next = JunctionId(0);
        for _ in 0..count.min(n) {
            hop_bfs(net, next, &mut row);
            table.landmarks.push(next);
            let mut best = (0u32, None);
            for (i, (&d, m)) in row.iter().zip(min_to_landmarks.iter_mut()).enumerate() {
                *m = (*m).min(d);
                // Strict `>` keeps the pick deterministic (first max wins);
                // u32::MAX (unreachable) beats any finite hop count, so
                // uncovered components are landmarked before covered ones
                // densify.
                if *m > best.0 {
                    best = (*m, Some(JunctionId(i as u32)));
                }
            }
            match best.1 {
                Some(j) if best.0 > 0 => next = j,
                // Every junction is already a landmark (tiny maps).
                _ => break,
            }
        }
        // Phase 2: exact Dijkstra rows, one per landmark, across the
        // worker pool. Rows are disjoint `n`-sized slices of the flat
        // arena claimed through an atomic cursor, so every schedule
        // writes identical bytes.
        let picked = table.landmarks.len();
        table.dist = vec![f64::INFINITY; picked * n];
        let workers = effective_workers(workers, picked);
        if workers <= 1 {
            for (l, chunk) in table.dist.chunks_mut(n).enumerate() {
                sssp(net, table.landmarks[l], chunk);
            }
        } else {
            let landmarks = &table.landmarks;
            let mut buckets: Vec<Vec<(usize, &mut [f64])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (l, row) in table.dist.chunks_mut(n).enumerate() {
                buckets[l % workers].push((l, row));
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for (l, row) in bucket {
                            sssp(net, landmarks[l], row);
                        }
                    });
                }
            });
        }
        table
    }

    /// Number of landmarks actually selected.
    pub fn count(&self) -> usize {
        self.landmarks.len()
    }

    /// The selected landmark junctions.
    pub fn landmarks(&self) -> &[JunctionId] {
        &self.landmarks
    }

    /// Exact road distances from landmark `l` (an index into
    /// [`landmarks`](Self::landmarks)) to every junction, indexed by
    /// junction id; `f64::INFINITY` for unreachable junctions.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ count()`.
    pub fn distances(&self, l: usize) -> &[f64] {
        &self.dist[l * self.junctions..(l + 1) * self.junctions]
    }

    /// A lower bound on the road distance between two junctions:
    /// `max_l |d(l,a) − d(l,b)|`. Returns `f64::INFINITY` exactly when
    /// some landmark proves the junctions lie in different components.
    pub fn lower_bound(&self, a: JunctionId, b: JunctionId) -> f64 {
        let mut lb = 0.0f64;
        for l in 0..self.count() {
            let row = self.distances(l);
            let (da, db) = (row[a.index()], row[b.index()]);
            match (da.is_finite(), db.is_finite()) {
                (true, true) => lb = lb.max((da - db).abs()),
                // One side reachable from `l`, the other not: different
                // components, the true distance is infinite.
                (true, false) | (false, true) => return f64::INFINITY,
                // `l` sees neither: no information.
                (false, false) => {}
            }
        }
        lb
    }

    /// An upper bound on the road distance between two junctions:
    /// `min_l d(l,a) + d(l,b)` (`f64::INFINITY` when no landmark
    /// reaches both).
    pub fn upper_bound(&self, a: JunctionId, b: JunctionId) -> f64 {
        let mut ub = f64::INFINITY;
        for l in 0..self.count() {
            let row = self.distances(l);
            ub = ub.min(row[a.index()] + row[b.index()]);
        }
        ub
    }
}

/// Single-source breadth-first hop distances from `src` into `out`
/// (`u32::MAX` = unreachable). The landmark-selection metric: two
/// orders of magnitude cheaper than a Dijkstra and good enough to find
/// far-apart junctions.
fn hop_bfs(net: &RoadNetwork, src: JunctionId, out: &mut [u32]) {
    out.fill(u32::MAX);
    let mut frontier = vec![src];
    let mut next = Vec::new();
    out[src.index()] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        for &j in &frontier {
            for &s in net.incident_segments(j) {
                let other = net.segment(s).other_endpoint(j).expect("incident endpoint");
                if out[other.index()] == u32::MAX {
                    out[other.index()] = depth;
                    next.push(other);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
}

/// Single-source shortest-path distances (length-weighted Dijkstra) from
/// `src` into `out` (one slot per junction; unreachable = ∞).
fn sssp(net: &RoadNetwork, src: JunctionId, out: &mut [f64]) {
    use std::collections::BinaryHeap;
    out.fill(f64::INFINITY);
    // (negated distance, junction) so the max-heap pops nearest first;
    // distances are finite non-NaN by construction.
    #[derive(PartialEq)]
    struct Entry(f64, u32);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut heap = BinaryHeap::new();
    out[src.index()] = 0.0;
    heap.push(Entry(0.0, src.0));
    while let Some(Entry(d, j)) = heap.pop() {
        let j = JunctionId(j);
        if d > out[j.index()] {
            continue;
        }
        for &s in net.incident_segments(j) {
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd < out[other.index()] {
                out[other.index()] = nd;
                heap.push(Entry(nd, other.0));
            }
        }
    }
}

/// Word-packed bounded-hop reachability: for every segment, a `u64`
/// bitmask of the segments within `hops` adjacency steps (including the
/// segment itself).
///
/// The temporal adversary's movement model asks "which observed
/// segments are within `h` hops of yesterday's candidate set?" — with
/// this index that is an OR of candidate masks followed by single-bit
/// tests, instead of a breadth-first expansion per owner per tick.
///
/// ```
/// use roadnet::{grid_city, index::ReachIndex, path::segments_within_hops, SegmentId};
/// let net = grid_city(5, 5, 100.0);
/// let reach = ReachIndex::build(&net, 2);
/// let ball = segments_within_hops(&net, SegmentId(7), 2);
/// for s in net.segment_ids() {
///     assert_eq!(reach.reaches(SegmentId(7), s), ball.contains(&s));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ReachIndex {
    hops: usize,
    words: usize,
    /// Segment-major: the mask of segment `s` is
    /// `bits[s·words .. (s+1)·words]`.
    bits: Vec<u64>,
}

impl ReachIndex {
    /// Builds the index for a fixed hop budget with a single worker;
    /// see [`build_with`](Self::build_with).
    pub fn build(net: &RoadNetwork, hops: usize) -> Self {
        Self::build_with(net, hops, 1)
    }

    /// Builds the index for a fixed hop budget by `hops` rounds of
    /// bit-parallel dilation (`mask[s] |= mask[n]` for every neighbor).
    ///
    /// Each dilation round writes disjoint row chunks of the `next`
    /// buffer from the read-only `cur` buffer, so the rounds fan out
    /// across `workers` scoped threads (`0` = one per core) with
    /// bit-identical output at every worker count.
    pub fn build_with(net: &RoadNetwork, hops: usize, workers: usize) -> Self {
        let s_count = net.segment_count();
        let words = s_count.div_ceil(64);
        if s_count == 0 {
            return ReachIndex {
                hops,
                words,
                bits: Vec::new(),
            };
        }
        let mut cur = vec![0u64; s_count * words];
        for i in 0..s_count {
            cur[i * words + i / 64] |= 1u64 << (i % 64);
        }
        let workers = effective_workers(workers, s_count);
        let chunk_rows = s_count.div_ceil(workers).max(1);
        let mut next = cur.clone();
        for _ in 0..hops {
            if workers <= 1 {
                dilate_rows(net, &cur, &mut next, 0, s_count, words);
            } else {
                let cur_ref = &cur;
                std::thread::scope(|scope| {
                    for (c, chunk) in next.chunks_mut(chunk_rows * words).enumerate() {
                        let first = c * chunk_rows;
                        let count = chunk.len() / words.max(1);
                        scope.spawn(move || {
                            dilate_rows(net, cur_ref, chunk, first, count, words);
                        });
                    }
                });
            }
            std::mem::swap(&mut cur, &mut next);
        }
        ReachIndex {
            hops,
            words,
            bits: cur,
        }
    }

    /// The hop budget the index was built for.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Byte size of the packed mask matrix (`segment_count² / 8`,
    /// rounded up to whole words per row) — what a budget decision at
    /// city scale is really about.
    pub fn packed_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Words per mask (`ceil(segment_count / 64)`).
    pub fn words_per_mask(&self) -> usize {
        self.words
    }

    /// The packed mask of segments within the hop budget of `s`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from the indexed network
    /// never are).
    pub fn mask(&self, s: SegmentId) -> &[u64] {
        &self.bits[s.index() * self.words..(s.index() + 1) * self.words]
    }

    /// Whether `to` is within the hop budget of `from`.
    pub fn reaches(&self, from: SegmentId, to: SegmentId) -> bool {
        Self::mask_contains(self.mask(from), to)
    }

    /// Tests one bit of a packed mask (e.g. an OR-accumulated union of
    /// per-segment masks). Out-of-range ids test false.
    pub fn mask_contains(mask: &[u64], s: SegmentId) -> bool {
        mask.get(s.index() / 64)
            .is_some_and(|&w| w & (1u64 << (s.index() % 64)) != 0)
    }

    /// ORs the masks of `sources` into `acc` (cleared and resized to
    /// [`words_per_mask`](Self::words_per_mask) first): the packed set
    /// of segments within the hop budget of *any* source.
    pub fn union_into<I: IntoIterator<Item = SegmentId>>(&self, sources: I, acc: &mut Vec<u64>) {
        acc.clear();
        acc.resize(self.words, 0);
        for s in sources {
            for (a, &w) in acc.iter_mut().zip(self.mask(s)) {
                *a |= w;
            }
        }
    }
}

/// One dilation round over rows `[first, first + rows)`: copy each row
/// from `cur`, then OR in the `cur` rows of its CSR neighbors. `out` is
/// the (worker-local) destination slice whose row 0 is global row
/// `first`.
fn dilate_rows(
    net: &RoadNetwork,
    cur: &[u64],
    out: &mut [u64],
    first: usize,
    rows: usize,
    words: usize,
) {
    for r in 0..rows {
        let seg = first + r;
        let dst = r * words;
        out[dst..dst + words].copy_from_slice(&cur[seg * words..(seg + 1) * words]);
        for &n in net.neighbor_segments_csr(SegmentId(seg as u32)) {
            let src = n.index() * words;
            for w in 0..words {
                out[dst + w] |= cur[src + w];
            }
        }
    }
}

/// The built-once graph index of a [`RoadNetwork`]: a [`LandmarkTable`]
/// plus a per-hop-budget cache of [`ReachIndex`]es. Obtain one through
/// [`RoadNetwork::graph_index`] (built lazily, shared by every reader)
/// or build standalone with [`GraphIndex::build`].
#[derive(Debug)]
pub struct GraphIndex {
    landmarks: LandmarkTable,
    /// Lazily built reach indexes for hop budgets `0..=MAX_CACHED_HOPS`.
    reach: Vec<OnceLock<Arc<ReachIndex>>>,
}

impl GraphIndex {
    /// Builds with the default [`IndexBudget`] and one worker per core
    /// (the parallel build is bit-identical to the serial one); reach
    /// masks are built per hop budget on first use.
    pub fn build(net: &RoadNetwork) -> Self {
        Self::build_with(net, &IndexBudget::default(), 0)
    }

    /// Builds the landmark table eagerly under an explicit budget,
    /// fanning the per-landmark Dijkstras across `workers` scoped
    /// threads (`0` = one per core; output is bit-identical at every
    /// worker count). Reach masks are built lazily for hop budgets up
    /// to `budget.reach_hop_cap` and never cached beyond it.
    pub fn build_with(net: &RoadNetwork, budget: &IndexBudget, workers: usize) -> Self {
        GraphIndex {
            landmarks: LandmarkTable::build_with(net, budget.landmarks, workers),
            reach: (0..=budget.reach_hop_cap)
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// The landmark distance table.
    pub fn landmarks(&self) -> &LandmarkTable {
        &self.landmarks
    }

    /// The largest hop count this index will cache a [`ReachIndex`]
    /// for ([`MAX_CACHED_HOPS`] unless built with a tighter
    /// [`IndexBudget`]).
    pub fn reach_hop_cap(&self) -> usize {
        self.reach.len().saturating_sub(1)
    }

    /// The reachability index for `hops` if it fits the build budget:
    /// built on first use, cached, shared. Returns `None` beyond the
    /// budget's hop cap — the signal for consumers (the temporal
    /// adversary's movement model) to take their BFS fallback instead
    /// of forcing a quadratic-memory build on a huge map.
    pub fn reach_cached(&self, net: &RoadNetwork, hops: usize) -> Option<Arc<ReachIndex>> {
        self.reach
            .get(hops)
            .map(|cell| Arc::clone(cell.get_or_init(|| Arc::new(ReachIndex::build(net, hops)))))
    }

    /// The reachability index for `hops`, cached within the budget's
    /// hop cap and built uncached (every call pays the full build)
    /// beyond it. `net` must be the network this index was built from
    /// (callers going through [`RoadNetwork::reach_index`] get that for
    /// free).
    pub fn reach(&self, net: &RoadNetwork, hops: usize) -> Arc<ReachIndex> {
        self.reach_cached(net, hops)
            .unwrap_or_else(|| Arc::new(ReachIndex::build(net, hops)))
    }
}

/// Lazy [`GraphIndex`] cell embedded in [`RoadNetwork`]. Purely derived
/// state: plain clones start empty (the clone rebuilds on demand) and
/// every cell compares equal, so the network's `Clone`/`PartialEq`
/// semantics are unchanged by the cache. The index sits behind an
/// `Arc` so [`RoadNetwork::share_index`] can hand an already-built
/// index to a copy without rebuilding (seconds per clone at city
/// scale).
#[derive(Default)]
pub(crate) struct IndexCell(pub(crate) OnceLock<Arc<GraphIndex>>);

impl IndexCell {
    /// A cell pre-seeded with an already-built shared index.
    pub(crate) fn prebuilt(index: Arc<GraphIndex>) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(index);
        IndexCell(cell)
    }
}

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        IndexCell::default()
    }
}

impl PartialEq for IndexCell {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for IndexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexCell({})",
            if self.0.get().is_some() {
                "built"
            } else {
                "empty"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_city, irregular_city, IrregularConfig};

    #[test]
    fn nearest_matches_brute_force() {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 160,
            seed: 3,
            ..Default::default()
        });
        let idx = SegmentIndex::build(&net, 80.0);
        let bb = net.bounding_box();
        let mut rng_x = 0.37_f64;
        for i in 0..50 {
            // Cheap deterministic pseudo-random points.
            rng_x = (rng_x * 997.0 + i as f64).fract();
            let p = Point::new(
                bb.min.x + rng_x * bb.width(),
                bb.min.y + ((rng_x * 13.7).fract()) * bb.height(),
            );
            let (got, gd) = idx.nearest_segment(&net, p).unwrap();
            // Brute force.
            let mut best = None;
            for seg in net.segments() {
                let d = point_segment_distance(
                    p,
                    net.junction(seg.a()).position(),
                    net.junction(seg.b()).position(),
                );
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((seg.id(), d));
                }
            }
            let (_, bd) = best.unwrap();
            assert!(
                (gd - bd).abs() < 1e-9,
                "index found distance {gd}, brute force {bd} for {p} (segment {got})"
            );
        }
    }

    #[test]
    fn query_box_returns_overlapping_segments() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 50.0);
        let q = BoundingBox::from_corners(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let found = idx.segments_in_box(q);
        // The 2x2 corner block has 4 horizontal + 4 vertical candidate
        // segments overlapping the box (by bounding boxes, a superset is
        // allowed but every true overlap must be present).
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            if BoundingBox::from_corners(pa, pb).intersects(&q) {
                assert!(found.contains(&seg.id()), "missing {}", seg.id());
            }
        }
        assert!(idx.segments_in_box(BoundingBox::empty()).is_empty());
    }

    #[test]
    fn nearest_from_far_away_still_works() {
        let net = grid_city(3, 3, 100.0);
        let idx = SegmentIndex::build(&net, 64.0);
        let (_, d) = idx
            .nearest_segment(&net, Point::new(-5000.0, -5000.0))
            .unwrap();
        assert!((d - (5000.0_f64.powi(2) * 2.0).sqrt()).abs() < 1.0);
    }

    #[test]
    fn grid_size_sane() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 100.0);
        let (c, r) = idx.grid_size();
        assert!(c >= 4 && r >= 4);
        assert_eq!(idx.bounds(), net.bounding_box());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = grid_city(2, 2, 10.0);
        let _ = SegmentIndex::build(&net, 0.0);
    }

    #[test]
    fn parallel_landmark_build_is_bit_identical_at_every_worker_count() {
        // Property over several map shapes and seeds: the scoped-thread
        // build must write the same bytes as the serial one, bit for
        // bit (f64 compared through to_bits, not ==).
        let maps = [
            crate::citygen::city_map(5, 2000),
            irregular_city(&IrregularConfig {
                junctions: 300,
                segments: 400,
                seed: 17,
                ..Default::default()
            }),
            grid_city(9, 13, 80.0),
        ];
        for net in &maps {
            let serial = LandmarkTable::build_with(net, DEFAULT_LANDMARKS, 1);
            for workers in [2usize, 3, 5, 8, 32] {
                let par = LandmarkTable::build_with(net, DEFAULT_LANDMARKS, workers);
                assert_eq!(par.landmarks, serial.landmarks, "workers={workers}");
                assert_eq!(par.dist.len(), serial.dist.len(), "workers={workers}");
                for (i, (a, b)) in serial.dist.iter().zip(par.dist.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "row slot {i} at workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_reach_build_is_bit_identical_at_every_worker_count() {
        let net = crate::citygen::city_map(8, 1500);
        for hops in [1usize, 3, 5] {
            let serial = ReachIndex::build_with(&net, hops, 1);
            for workers in [2usize, 4, 7, 16] {
                let par = ReachIndex::build_with(&net, hops, workers);
                assert_eq!(par.bits, serial.bits, "hops={hops} workers={workers}");
            }
        }
    }

    #[test]
    fn landmark_rows_stay_exact_shortest_distances() {
        // The two-phase build must still produce exact Dijkstra rows.
        let net = grid_city(6, 6, 100.0);
        let table = LandmarkTable::build(&net, 4);
        for (l, &lm) in table.landmarks().iter().enumerate() {
            let row = table.distances(l);
            for j in net.junction_ids() {
                let exact = crate::path::shortest_path(&net, lm, j).map(|r| r.length);
                match exact {
                    Some(d) => assert!((row[j.index()] - d).abs() < 1e-9),
                    None => assert!(row[j.index()].is_infinite()),
                }
            }
        }
    }

    #[test]
    fn budget_caps_reach_caching_and_landmark_count() {
        let net = grid_city(8, 8, 100.0);
        let budget = IndexBudget {
            landmarks: 4,
            reach_hop_cap: 2,
        };
        let index = GraphIndex::build_with(&net, &budget, 2);
        assert_eq!(index.landmarks().count(), 4);
        assert_eq!(index.reach_hop_cap(), 2);
        assert!(index.reach_cached(&net, 2).is_some());
        assert!(index.reach_cached(&net, 3).is_none());
        // Beyond the cap `reach` still answers (uncached).
        assert_eq!(index.reach(&net, 3).hops(), 3);
        assert!(index.reach(&net, 1).packed_bytes() > 0);
    }
}
