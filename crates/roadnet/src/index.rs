//! Uniform-grid spatial index over segments.
//!
//! Used by the trace generator (snap a Gaussian sample to the nearest road)
//! and the renderers (cull segments outside the viewport).

use crate::geometry::{point_segment_distance, BoundingBox, Point};
use crate::graph::{RoadNetwork, SegmentId};

/// A uniform-grid spatial index over the segments of a road network.
///
/// ```
/// use roadnet::{generate::grid_city, index::SegmentIndex, geometry::Point};
/// let net = grid_city(5, 5, 100.0);
/// let idx = SegmentIndex::build(&net, 64.0);
/// let (seg, d) = idx.nearest_segment(&net, Point::new(151.0, 207.0)).unwrap();
/// assert!(d <= 10.0);
/// # let _ = seg;
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    bounds: BoundingBox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// For each grid cell, the segments whose bounding box overlaps it.
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds the index with the given cell size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive or the network has no
    /// junctions.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bounds = net.bounding_box();
        assert!(!bounds.is_empty(), "cannot index an empty network");
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let mut cells = vec![Vec::new(); cols * rows];
        let mut index = SegmentIndex {
            bounds,
            cell: cell_size,
            cols,
            rows,
            cells: Vec::new(),
        };
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            let bb = BoundingBox::from_corners(pa, pb);
            let (c0, r0) = index.cell_of(bb.min);
            let (c1, r1) = index.cell_of(bb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(seg.id());
                }
            }
        }
        index.cells = cells;
        index
    }

    /// The indexed area.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.bounds.min.x) / self.cell).floor();
        let r = ((p.y - self.bounds.min.y) / self.cell).floor();
        (
            (c.max(0.0) as usize).min(self.cols - 1),
            (r.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// Segments whose bounding boxes intersect the query box. May contain
    /// duplicates-free deterministic order.
    pub fn segments_in_box(&self, query: BoundingBox) -> Vec<SegmentId> {
        if query.is_empty() {
            return Vec::new();
        }
        let (c0, r0) = self.cell_of(query.min);
        let (c1, r1) = self.cell_of(query.max);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &s in &self.cells[r * self.cols + c] {
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// The segment nearest to `p` and its distance, or `None` for a network
    /// with no segments.
    ///
    /// Searches outward ring by ring, so the cost is proportional to the
    /// local density rather than the network size.
    pub fn nearest_segment(&self, net: &RoadNetwork, p: Point) -> Option<(SegmentId, f64)> {
        if net.segment_count() == 0 {
            return None;
        }
        let (pc, pr) = self.cell_of(p);
        let max_ring = self.cols.max(self.rows);
        let mut best: Option<(SegmentId, f64)> = None;
        for ring in 0..=max_ring {
            // Once we have a candidate, one extra ring is enough to make the
            // result exact (a closer segment can only live one ring further
            // than the ring where the candidate was found).
            if let Some((_, d)) = best {
                if d <= (ring.saturating_sub(1)) as f64 * self.cell {
                    break;
                }
            }
            let mut any_cell = false;
            for (c, r) in ring_cells(pc, pr, ring, self.cols, self.rows) {
                any_cell = true;
                for &s in &self.cells[r * self.cols + c] {
                    let seg = net.segment(s);
                    let d = point_segment_distance(
                        p,
                        net.junction(seg.a()).position(),
                        net.junction(seg.b()).position(),
                    );
                    if best.is_none_or(|(bs, bd)| d < bd || (d == bd && s < bs)) {
                        best = Some((s, d));
                    }
                }
            }
            if !any_cell && ring > 0 && best.is_some() {
                break;
            }
        }
        best
    }
}

/// The cells on the square ring at Chebyshev distance `ring` from `(pc,
/// pr)`, clipped to the grid.
fn ring_cells(pc: usize, pr: usize, ring: usize, cols: usize, rows: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (pc, pr, ring) = (pc as isize, pr as isize, ring as isize);
    let inside =
        |c: isize, r: isize| c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows;
    if ring == 0 {
        if inside(pc, pr) {
            out.push((pc as usize, pr as usize));
        }
        return out;
    }
    for c in (pc - ring)..=(pc + ring) {
        for r in [pr - ring, pr + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    for r in (pr - ring + 1)..=(pr + ring - 1) {
        for c in [pc - ring, pc + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_city, irregular_city, IrregularConfig};

    #[test]
    fn nearest_matches_brute_force() {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 160,
            seed: 3,
            ..Default::default()
        });
        let idx = SegmentIndex::build(&net, 80.0);
        let bb = net.bounding_box();
        let mut rng_x = 0.37_f64;
        for i in 0..50 {
            // Cheap deterministic pseudo-random points.
            rng_x = (rng_x * 997.0 + i as f64).fract();
            let p = Point::new(
                bb.min.x + rng_x * bb.width(),
                bb.min.y + ((rng_x * 13.7).fract()) * bb.height(),
            );
            let (got, gd) = idx.nearest_segment(&net, p).unwrap();
            // Brute force.
            let mut best = None;
            for seg in net.segments() {
                let d = point_segment_distance(
                    p,
                    net.junction(seg.a()).position(),
                    net.junction(seg.b()).position(),
                );
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((seg.id(), d));
                }
            }
            let (_, bd) = best.unwrap();
            assert!(
                (gd - bd).abs() < 1e-9,
                "index found distance {gd}, brute force {bd} for {p} (segment {got})"
            );
        }
    }

    #[test]
    fn query_box_returns_overlapping_segments() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 50.0);
        let q = BoundingBox::from_corners(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let found = idx.segments_in_box(q);
        // The 2x2 corner block has 4 horizontal + 4 vertical candidate
        // segments overlapping the box (by bounding boxes, a superset is
        // allowed but every true overlap must be present).
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            if BoundingBox::from_corners(pa, pb).intersects(&q) {
                assert!(found.contains(&seg.id()), "missing {}", seg.id());
            }
        }
        assert!(idx.segments_in_box(BoundingBox::empty()).is_empty());
    }

    #[test]
    fn nearest_from_far_away_still_works() {
        let net = grid_city(3, 3, 100.0);
        let idx = SegmentIndex::build(&net, 64.0);
        let (_, d) = idx
            .nearest_segment(&net, Point::new(-5000.0, -5000.0))
            .unwrap();
        assert!((d - (5000.0_f64.powi(2) * 2.0).sqrt()).abs() < 1.0);
    }

    #[test]
    fn grid_size_sane() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 100.0);
        let (c, r) = idx.grid_size();
        assert!(c >= 4 && r >= 4);
        assert_eq!(idx.bounds(), net.bounding_box());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = grid_city(2, 2, 10.0);
        let _ = SegmentIndex::build(&net, 0.0);
    }
}
