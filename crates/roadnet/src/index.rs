//! Spatial and graph indexes over a road network.
//!
//! Two families live here:
//!
//! * [`SegmentIndex`] — a uniform-grid *spatial* index, used by the trace
//!   generator (snap a Gaussian sample to the nearest road) and the
//!   renderers (cull segments outside the viewport);
//! * [`GraphIndex`] — a read-only, built-once *graph* index: an
//!   ALT-style [`LandmarkTable`] of exact road distances from a handful
//!   of far-apart junctions, and word-packed bounded-hop
//!   [`ReachIndex`] reachability masks. Query-time consumers (the LBS
//!   candidate search, the temporal adversary's movement model) trade
//!   per-query graph traversals for lookups into these tables — the
//!   amortize-the-setup pattern the ROADMAP's hardware-speed goal calls
//!   for. The index is derived state: it never feeds the cloaking
//!   draws, so receipts are byte-identical with or without it.
//!
//! [`RoadNetwork::graph_index`] builds the graph index lazily (behind a
//! `OnceLock`) on first use and shares it with every reader.

use crate::geometry::{point_segment_distance, BoundingBox, Point};
use crate::graph::{JunctionId, RoadNetwork, SegmentId};
use std::sync::{Arc, OnceLock};

/// A uniform-grid spatial index over the segments of a road network.
///
/// ```
/// use roadnet::{generate::grid_city, index::SegmentIndex, geometry::Point};
/// let net = grid_city(5, 5, 100.0);
/// let idx = SegmentIndex::build(&net, 64.0);
/// let (seg, d) = idx.nearest_segment(&net, Point::new(151.0, 207.0)).unwrap();
/// assert!(d <= 10.0);
/// # let _ = seg;
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    bounds: BoundingBox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// For each grid cell, the segments whose bounding box overlaps it.
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds the index with the given cell size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive or the network has no
    /// junctions.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bounds = net.bounding_box();
        assert!(!bounds.is_empty(), "cannot index an empty network");
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        let mut cells = vec![Vec::new(); cols * rows];
        let mut index = SegmentIndex {
            bounds,
            cell: cell_size,
            cols,
            rows,
            cells: Vec::new(),
        };
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            let bb = BoundingBox::from_corners(pa, pb);
            let (c0, r0) = index.cell_of(bb.min);
            let (c1, r1) = index.cell_of(bb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(seg.id());
                }
            }
        }
        index.cells = cells;
        index
    }

    /// The indexed area.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.bounds.min.x) / self.cell).floor();
        let r = ((p.y - self.bounds.min.y) / self.cell).floor();
        (
            (c.max(0.0) as usize).min(self.cols - 1),
            (r.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// Segments whose bounding boxes intersect the query box. May contain
    /// duplicates-free deterministic order.
    pub fn segments_in_box(&self, query: BoundingBox) -> Vec<SegmentId> {
        if query.is_empty() {
            return Vec::new();
        }
        let (c0, r0) = self.cell_of(query.min);
        let (c1, r1) = self.cell_of(query.max);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &s in &self.cells[r * self.cols + c] {
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// The segment nearest to `p` and its distance, or `None` for a network
    /// with no segments.
    ///
    /// Searches outward ring by ring, so the cost is proportional to the
    /// local density rather than the network size.
    pub fn nearest_segment(&self, net: &RoadNetwork, p: Point) -> Option<(SegmentId, f64)> {
        if net.segment_count() == 0 {
            return None;
        }
        let (pc, pr) = self.cell_of(p);
        let max_ring = self.cols.max(self.rows);
        let mut best: Option<(SegmentId, f64)> = None;
        for ring in 0..=max_ring {
            // Once we have a candidate, one extra ring is enough to make the
            // result exact (a closer segment can only live one ring further
            // than the ring where the candidate was found).
            if let Some((_, d)) = best {
                if d <= (ring.saturating_sub(1)) as f64 * self.cell {
                    break;
                }
            }
            let mut any_cell = false;
            for (c, r) in ring_cells(pc, pr, ring, self.cols, self.rows) {
                any_cell = true;
                for &s in &self.cells[r * self.cols + c] {
                    let seg = net.segment(s);
                    let d = point_segment_distance(
                        p,
                        net.junction(seg.a()).position(),
                        net.junction(seg.b()).position(),
                    );
                    if best.is_none_or(|(bs, bd)| d < bd || (d == bd && s < bs)) {
                        best = Some((s, d));
                    }
                }
            }
            if !any_cell && ring > 0 && best.is_some() {
                break;
            }
        }
        best
    }
}

/// The cells on the square ring at Chebyshev distance `ring` from `(pc,
/// pr)`, clipped to the grid.
fn ring_cells(pc: usize, pr: usize, ring: usize, cols: usize, rows: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (pc, pr, ring) = (pc as isize, pr as isize, ring as isize);
    let inside =
        |c: isize, r: isize| c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows;
    if ring == 0 {
        if inside(pc, pr) {
            out.push((pc as usize, pr as usize));
        }
        return out;
    }
    for c in (pc - ring)..=(pc + ring) {
        for r in [pr - ring, pr + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    for r in (pr - ring + 1)..=(pr + ring - 1) {
        for c in [pc - ring, pc + ring] {
            if inside(c, r) {
                out.push((c as usize, r as usize));
            }
        }
    }
    out
}

/// Number of landmarks a [`GraphIndex`] selects by default. Sixteen
/// far-apart junctions give tight triangle-inequality bounds on maps up
/// to the paper's Atlanta-scale evaluation network while keeping the
/// table at `16 × junction_count` doubles.
pub const DEFAULT_LANDMARKS: usize = 16;

/// Hop counts up to this value get their [`ReachIndex`] cached inside
/// the [`GraphIndex`]; larger (pathological) hop budgets are built on
/// demand without caching.
pub const MAX_CACHED_HOPS: usize = 16;

/// ALT-style landmark distance table: exact road distances from a small
/// set of far-apart junctions (selected by farthest-point sampling) to
/// every junction of the network.
///
/// By the triangle inequality, for any landmark `l` and junctions `a`,
/// `b`: `|d(l,a) − d(l,b)| ≤ d(a,b) ≤ d(l,a) + d(l,b)` — so the table
/// yields instant lower *and* upper bounds on any road distance, which
/// the LBS candidate search uses to direct and terminate its Dijkstra
/// early without changing any answer.
///
/// Farthest-point sampling treats unreachable junctions as infinitely
/// far, so on a disconnected map each component receives a landmark
/// before any component gets its second (up to the landmark budget).
///
/// ```
/// use roadnet::{grid_city, index::LandmarkTable, path::shortest_path, JunctionId};
/// let net = grid_city(6, 6, 100.0);
/// let table = LandmarkTable::build(&net, 8);
/// let (a, b) = (JunctionId(3), JunctionId(31));
/// let exact = shortest_path(&net, a, b).unwrap().length;
/// assert!(table.lower_bound(a, b) <= exact + 1e-9);
/// assert!(table.upper_bound(a, b) >= exact - 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LandmarkTable {
    landmarks: Vec<JunctionId>,
    /// Row-major `landmarks.len() × junction_count` distances;
    /// `f64::INFINITY` marks a junction unreachable from the landmark.
    dist: Vec<f64>,
    junctions: usize,
}

impl LandmarkTable {
    /// Builds a table of (at most) `count` landmarks by farthest-point
    /// sampling: the first landmark is junction 0, each next one is the
    /// junction farthest from all landmarks chosen so far (unreachable
    /// counts as farthest, covering disconnected components first).
    pub fn build(net: &RoadNetwork, count: usize) -> Self {
        let n = net.junction_count();
        let mut table = LandmarkTable {
            landmarks: Vec::new(),
            dist: Vec::new(),
            junctions: n,
        };
        if n == 0 || count == 0 {
            return table;
        }
        let mut row = vec![f64::INFINITY; n];
        let mut min_to_landmarks = vec![f64::INFINITY; n];
        let mut next = JunctionId(0);
        for _ in 0..count.min(n) {
            sssp(net, next, &mut row);
            table.landmarks.push(next);
            table.dist.extend_from_slice(&row);
            let mut best = (0.0f64, None);
            for (i, (&d, m)) in row.iter().zip(min_to_landmarks.iter_mut()).enumerate() {
                *m = m.min(d);
                // Strict `>` keeps the pick deterministic (first max wins);
                // infinity beats any finite distance, so uncovered
                // components are landmarked before covered ones densify.
                if *m > best.0 {
                    best = (*m, Some(JunctionId(i as u32)));
                }
            }
            match best.1 {
                Some(j) if best.0 > 0.0 => next = j,
                // Every junction is already a landmark (tiny maps).
                _ => break,
            }
        }
        table
    }

    /// Number of landmarks actually selected.
    pub fn count(&self) -> usize {
        self.landmarks.len()
    }

    /// The selected landmark junctions.
    pub fn landmarks(&self) -> &[JunctionId] {
        &self.landmarks
    }

    /// Exact road distances from landmark `l` (an index into
    /// [`landmarks`](Self::landmarks)) to every junction, indexed by
    /// junction id; `f64::INFINITY` for unreachable junctions.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ count()`.
    pub fn distances(&self, l: usize) -> &[f64] {
        &self.dist[l * self.junctions..(l + 1) * self.junctions]
    }

    /// A lower bound on the road distance between two junctions:
    /// `max_l |d(l,a) − d(l,b)|`. Returns `f64::INFINITY` exactly when
    /// some landmark proves the junctions lie in different components.
    pub fn lower_bound(&self, a: JunctionId, b: JunctionId) -> f64 {
        let mut lb = 0.0f64;
        for l in 0..self.count() {
            let row = self.distances(l);
            let (da, db) = (row[a.index()], row[b.index()]);
            match (da.is_finite(), db.is_finite()) {
                (true, true) => lb = lb.max((da - db).abs()),
                // One side reachable from `l`, the other not: different
                // components, the true distance is infinite.
                (true, false) | (false, true) => return f64::INFINITY,
                // `l` sees neither: no information.
                (false, false) => {}
            }
        }
        lb
    }

    /// An upper bound on the road distance between two junctions:
    /// `min_l d(l,a) + d(l,b)` (`f64::INFINITY` when no landmark
    /// reaches both).
    pub fn upper_bound(&self, a: JunctionId, b: JunctionId) -> f64 {
        let mut ub = f64::INFINITY;
        for l in 0..self.count() {
            let row = self.distances(l);
            ub = ub.min(row[a.index()] + row[b.index()]);
        }
        ub
    }
}

/// Single-source shortest-path distances (length-weighted Dijkstra) from
/// `src` into `out` (resized to the junction count; unreachable = ∞).
fn sssp(net: &RoadNetwork, src: JunctionId, out: &mut Vec<f64>) {
    use std::collections::BinaryHeap;
    let n = net.junction_count();
    out.clear();
    out.resize(n, f64::INFINITY);
    // (negated distance, junction) so the max-heap pops nearest first;
    // distances are finite non-NaN by construction.
    #[derive(PartialEq)]
    struct Entry(f64, u32);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut heap = BinaryHeap::new();
    out[src.index()] = 0.0;
    heap.push(Entry(0.0, src.0));
    while let Some(Entry(d, j)) = heap.pop() {
        let j = JunctionId(j);
        if d > out[j.index()] {
            continue;
        }
        for &s in net.incident_segments(j) {
            let seg = net.segment(s);
            let other = seg.other_endpoint(j).expect("incident endpoint");
            let nd = d + seg.length();
            if nd < out[other.index()] {
                out[other.index()] = nd;
                heap.push(Entry(nd, other.0));
            }
        }
    }
}

/// Word-packed bounded-hop reachability: for every segment, a `u64`
/// bitmask of the segments within `hops` adjacency steps (including the
/// segment itself).
///
/// The temporal adversary's movement model asks "which observed
/// segments are within `h` hops of yesterday's candidate set?" — with
/// this index that is an OR of candidate masks followed by single-bit
/// tests, instead of a breadth-first expansion per owner per tick.
///
/// ```
/// use roadnet::{grid_city, index::ReachIndex, path::segments_within_hops, SegmentId};
/// let net = grid_city(5, 5, 100.0);
/// let reach = ReachIndex::build(&net, 2);
/// let ball = segments_within_hops(&net, SegmentId(7), 2);
/// for s in net.segment_ids() {
///     assert_eq!(reach.reaches(SegmentId(7), s), ball.contains(&s));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ReachIndex {
    hops: usize,
    words: usize,
    /// Segment-major: the mask of segment `s` is
    /// `bits[s·words .. (s+1)·words]`.
    bits: Vec<u64>,
}

impl ReachIndex {
    /// Builds the index for a fixed hop budget by `hops` rounds of
    /// bit-parallel dilation (`mask[s] |= mask[n]` for every neighbor).
    pub fn build(net: &RoadNetwork, hops: usize) -> Self {
        let s_count = net.segment_count();
        let words = s_count.div_ceil(64);
        let mut cur = vec![0u64; s_count * words];
        for i in 0..s_count {
            cur[i * words + i / 64] |= 1u64 << (i % 64);
        }
        let mut next = cur.clone();
        for _ in 0..hops {
            next.copy_from_slice(&cur);
            for i in 0..s_count {
                let dst = i * words;
                for &n in net.neighbor_segments_csr(SegmentId(i as u32)) {
                    let src = n.index() * words;
                    for w in 0..words {
                        next[dst + w] |= cur[src + w];
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        ReachIndex {
            hops,
            words,
            bits: cur,
        }
    }

    /// The hop budget the index was built for.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Words per mask (`ceil(segment_count / 64)`).
    pub fn words_per_mask(&self) -> usize {
        self.words
    }

    /// The packed mask of segments within the hop budget of `s`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids from the indexed network
    /// never are).
    pub fn mask(&self, s: SegmentId) -> &[u64] {
        &self.bits[s.index() * self.words..(s.index() + 1) * self.words]
    }

    /// Whether `to` is within the hop budget of `from`.
    pub fn reaches(&self, from: SegmentId, to: SegmentId) -> bool {
        Self::mask_contains(self.mask(from), to)
    }

    /// Tests one bit of a packed mask (e.g. an OR-accumulated union of
    /// per-segment masks). Out-of-range ids test false.
    pub fn mask_contains(mask: &[u64], s: SegmentId) -> bool {
        mask.get(s.index() / 64)
            .is_some_and(|&w| w & (1u64 << (s.index() % 64)) != 0)
    }

    /// ORs the masks of `sources` into `acc` (cleared and resized to
    /// [`words_per_mask`](Self::words_per_mask) first): the packed set
    /// of segments within the hop budget of *any* source.
    pub fn union_into<I: IntoIterator<Item = SegmentId>>(&self, sources: I, acc: &mut Vec<u64>) {
        acc.clear();
        acc.resize(self.words, 0);
        for s in sources {
            for (a, &w) in acc.iter_mut().zip(self.mask(s)) {
                *a |= w;
            }
        }
    }
}

/// The built-once graph index of a [`RoadNetwork`]: a [`LandmarkTable`]
/// plus a per-hop-budget cache of [`ReachIndex`]es. Obtain one through
/// [`RoadNetwork::graph_index`] (built lazily, shared by every reader)
/// or build standalone with [`GraphIndex::build`].
#[derive(Debug)]
pub struct GraphIndex {
    landmarks: LandmarkTable,
    /// Lazily built reach indexes for hop budgets `0..=MAX_CACHED_HOPS`.
    reach: Vec<OnceLock<Arc<ReachIndex>>>,
}

impl GraphIndex {
    /// Builds the landmark table eagerly ([`DEFAULT_LANDMARKS`]
    /// landmarks); reach masks are built per hop budget on first use.
    pub fn build(net: &RoadNetwork) -> Self {
        GraphIndex {
            landmarks: LandmarkTable::build(net, DEFAULT_LANDMARKS),
            reach: (0..=MAX_CACHED_HOPS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The landmark distance table.
    pub fn landmarks(&self) -> &LandmarkTable {
        &self.landmarks
    }

    /// The reachability index for `hops`, built on first use and cached
    /// for budgets up to [`MAX_CACHED_HOPS`]. `net` must be the network
    /// this index was built from (callers going through
    /// [`RoadNetwork::reach_index`] get that for free).
    pub fn reach(&self, net: &RoadNetwork, hops: usize) -> Arc<ReachIndex> {
        match self.reach.get(hops) {
            Some(cell) => Arc::clone(cell.get_or_init(|| Arc::new(ReachIndex::build(net, hops)))),
            None => Arc::new(ReachIndex::build(net, hops)),
        }
    }
}

/// Lazy [`GraphIndex`] cell embedded in [`RoadNetwork`]. Purely derived
/// state: clones start empty (the clone rebuilds on demand) and every
/// cell compares equal, so the network's `Clone`/`PartialEq` semantics
/// are unchanged by the cache.
#[derive(Default)]
pub(crate) struct IndexCell(pub(crate) OnceLock<GraphIndex>);

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        IndexCell::default()
    }
}

impl PartialEq for IndexCell {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for IndexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexCell({})",
            if self.0.get().is_some() {
                "built"
            } else {
                "empty"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_city, irregular_city, IrregularConfig};

    #[test]
    fn nearest_matches_brute_force() {
        let net = irregular_city(&IrregularConfig {
            junctions: 120,
            segments: 160,
            seed: 3,
            ..Default::default()
        });
        let idx = SegmentIndex::build(&net, 80.0);
        let bb = net.bounding_box();
        let mut rng_x = 0.37_f64;
        for i in 0..50 {
            // Cheap deterministic pseudo-random points.
            rng_x = (rng_x * 997.0 + i as f64).fract();
            let p = Point::new(
                bb.min.x + rng_x * bb.width(),
                bb.min.y + ((rng_x * 13.7).fract()) * bb.height(),
            );
            let (got, gd) = idx.nearest_segment(&net, p).unwrap();
            // Brute force.
            let mut best = None;
            for seg in net.segments() {
                let d = point_segment_distance(
                    p,
                    net.junction(seg.a()).position(),
                    net.junction(seg.b()).position(),
                );
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((seg.id(), d));
                }
            }
            let (_, bd) = best.unwrap();
            assert!(
                (gd - bd).abs() < 1e-9,
                "index found distance {gd}, brute force {bd} for {p} (segment {got})"
            );
        }
    }

    #[test]
    fn query_box_returns_overlapping_segments() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 50.0);
        let q = BoundingBox::from_corners(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let found = idx.segments_in_box(q);
        // The 2x2 corner block has 4 horizontal + 4 vertical candidate
        // segments overlapping the box (by bounding boxes, a superset is
        // allowed but every true overlap must be present).
        for seg in net.segments() {
            let pa = net.junction(seg.a()).position();
            let pb = net.junction(seg.b()).position();
            if BoundingBox::from_corners(pa, pb).intersects(&q) {
                assert!(found.contains(&seg.id()), "missing {}", seg.id());
            }
        }
        assert!(idx.segments_in_box(BoundingBox::empty()).is_empty());
    }

    #[test]
    fn nearest_from_far_away_still_works() {
        let net = grid_city(3, 3, 100.0);
        let idx = SegmentIndex::build(&net, 64.0);
        let (_, d) = idx
            .nearest_segment(&net, Point::new(-5000.0, -5000.0))
            .unwrap();
        assert!((d - (5000.0_f64.powi(2) * 2.0).sqrt()).abs() < 1.0);
    }

    #[test]
    fn grid_size_sane() {
        let net = grid_city(5, 5, 100.0);
        let idx = SegmentIndex::build(&net, 100.0);
        let (c, r) = idx.grid_size();
        assert!(c >= 4 && r >= 4);
        assert_eq!(idx.bounds(), net.bounding_box());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = grid_city(2, 2, 10.0);
        let _ = SegmentIndex::build(&net, 0.0);
    }
}
