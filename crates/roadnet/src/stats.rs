//! Descriptive statistics over road networks, used to validate that
//! generated maps structurally resemble the paper's Atlanta extract.

use crate::graph::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of junctions.
    pub junctions: usize,
    /// Number of segments.
    pub segments: usize,
    /// Number of connected components.
    pub components: usize,
    /// Histogram of junction degrees; index = degree.
    pub degree_histogram: Vec<usize>,
    /// Mean junction degree.
    pub mean_degree: f64,
    /// Total road length in meters.
    pub total_length: f64,
    /// Mean segment length in meters.
    pub mean_segment_length: f64,
    /// Minimum segment length.
    pub min_segment_length: f64,
    /// Maximum segment length.
    pub max_segment_length: f64,
}

impl NetworkStats {
    /// Computes statistics for `net`.
    pub fn compute(net: &RoadNetwork) -> Self {
        let mut degree_histogram = Vec::new();
        let mut degree_sum = 0usize;
        for j in net.junctions() {
            let d = j.degree();
            if degree_histogram.len() <= d {
                degree_histogram.resize(d + 1, 0);
            }
            degree_histogram[d] += 1;
            degree_sum += d;
        }
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in net.segments() {
            total += s.length();
            min = min.min(s.length());
            max = max.max(s.length());
        }
        let nseg = net.segment_count();
        NetworkStats {
            junctions: net.junction_count(),
            segments: nseg,
            components: net.junction_components().len(),
            mean_degree: degree_sum as f64 / net.junction_count().max(1) as f64,
            degree_histogram,
            total_length: total,
            mean_segment_length: if nseg == 0 { 0.0 } else { total / nseg as f64 },
            min_segment_length: if nseg == 0 { 0.0 } else { min },
            max_segment_length: max,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "junctions: {}  segments: {}  components: {}",
            self.junctions, self.segments, self.components
        )?;
        writeln!(
            f,
            "mean degree: {:.2}  total length: {:.1} km",
            self.mean_degree,
            self.total_length / 1000.0
        )?;
        writeln!(
            f,
            "segment length: mean {:.1} m, min {:.1} m, max {:.1} m",
            self.mean_segment_length, self.min_segment_length, self.max_segment_length
        )?;
        write!(f, "degree histogram:")?;
        for (d, n) in self.degree_histogram.iter().enumerate() {
            if *n > 0 {
                write!(f, " {d}:{n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{atlanta_like, grid_city};

    #[test]
    fn grid_stats() {
        let net = grid_city(3, 3, 100.0);
        let st = NetworkStats::compute(&net);
        assert_eq!(st.junctions, 9);
        assert_eq!(st.segments, 12);
        assert_eq!(st.components, 1);
        assert_eq!(st.degree_histogram[2], 4);
        assert_eq!(st.degree_histogram[3], 4);
        assert_eq!(st.degree_histogram[4], 1);
        assert!((st.mean_degree - 24.0 / 9.0).abs() < 1e-12);
        assert_eq!(st.mean_segment_length, 100.0);
        assert_eq!(st.min_segment_length, 100.0);
        assert_eq!(st.max_segment_length, 100.0);
    }

    #[test]
    fn atlanta_like_stats_resemble_a_city() {
        let st = NetworkStats::compute(&atlanta_like(0));
        assert_eq!(st.junctions, 6979);
        assert_eq!(st.segments, 9187);
        assert_eq!(st.components, 1);
        // Mean degree of a street network sits between 2 and 4.
        assert!(
            st.mean_degree > 2.0 && st.mean_degree < 4.0,
            "{}",
            st.mean_degree
        );
        assert!(st.mean_segment_length > 50.0 && st.mean_segment_length < 400.0);
    }

    #[test]
    fn display_is_nonempty() {
        let st = NetworkStats::compute(&grid_city(2, 2, 10.0));
        let text = st.to_string();
        assert!(text.contains("junctions: 4"));
        assert!(text.contains("degree histogram"));
    }
}
