//! Planar geometry primitives used by the road-network model.
//!
//! The paper's maps are small metropolitan extracts, so a flat Euclidean
//! plane (meters) is an adequate model; no geodesic math is needed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane, in meters.
///
/// ```
/// use roadnet::geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting coordinate in meters.
    pub x: f64,
    /// Northing coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (cheaper when only comparing).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` outside `[0, 1]` extrapolates along the same line.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned bounding box.
///
/// The empty box is represented by [`BoundingBox::empty`], which behaves as
/// the identity for [`BoundingBox::expand`] / [`BoundingBox::union`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoundingBox {
    /// An empty box (contains nothing; union identity).
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// A box spanning the two corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The tightest box around an iterator of points.
    pub fn around<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut bb = Self::empty();
        for p in points {
            bb.expand(p);
        }
        bb
    }

    /// Whether no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The union of two boxes.
    pub fn union(mut self, other: BoundingBox) -> BoundingBox {
        if !other.is_empty() {
            self.expand(other.min);
            self.expand(other.max);
        }
        self
    }

    /// Whether the box contains `p` (inclusive on all edges).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether two boxes overlap (inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Box width (0 when empty).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.x - self.min.x
        }
    }

    /// Box height (0 when empty).
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.y - self.min.y
        }
    }

    /// Diagonal length of the box — the paper's "spatial resolution" proxy.
    pub fn diagonal(&self) -> f64 {
        self.width().hypot(self.height())
    }

    /// Area of the box (0 when empty).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the box.
    ///
    /// # Panics
    ///
    /// Panics if the box is empty.
    pub fn center(&self) -> Point {
        assert!(!self.is_empty(), "center of an empty bounding box");
        self.min.midpoint(self.max)
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::empty()
    }
}

/// Distance from point `p` to the closed segment `(a, b)`.
pub fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let len_sq = a.distance_sq(b);
    if len_sq == 0.0 {
        return p.distance(a);
    }
    let t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len_sq;
    let t = t.clamp(0.0, 1.0);
    p.distance(a.lerp(b, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn point_distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_mid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, -2.0));
    }

    #[test]
    fn empty_box_behaves_as_identity() {
        let mut bb = BoundingBox::empty();
        assert!(bb.is_empty());
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.diagonal(), 0.0);
        bb.expand(Point::new(1.0, 1.0));
        assert!(!bb.is_empty());
        assert_eq!(bb.min, bb.max);
    }

    #[test]
    fn box_from_corners_normalizes() {
        let bb = BoundingBox::from_corners(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(5.0, 3.0));
        assert_eq!(bb.width(), 7.0);
        assert_eq!(bb.height(), 4.0);
        assert_eq!(bb.area(), 28.0);
    }

    #[test]
    fn box_contains_and_intersects() {
        let bb = BoundingBox::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(10.0, 10.0)));
        assert!(bb.contains(Point::new(5.0, 5.0)));
        assert!(!bb.contains(Point::new(10.01, 5.0)));

        let other = BoundingBox::from_corners(Point::new(9.0, 9.0), Point::new(20.0, 20.0));
        assert!(bb.intersects(&other));
        let disjoint = BoundingBox::from_corners(Point::new(11.0, 0.0), Point::new(20.0, 5.0));
        assert!(!bb.intersects(&disjoint));
        assert!(!bb.intersects(&BoundingBox::empty()));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let bb = BoundingBox::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(bb.union(BoundingBox::empty()), bb);
        assert_eq!(BoundingBox::empty().union(bb), bb);
    }

    #[test]
    fn around_collects_all_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(4.0, 2.0),
        ];
        let bb = BoundingBox::around(pts);
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min, Point::new(-2.0, 0.0));
        assert_eq!(bb.max, Point::new(4.0, 5.0));
    }

    #[test]
    fn center_of_unit_box() {
        let bb = BoundingBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 4.0));
        assert_eq!(bb.center(), Point::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "empty bounding box")]
    fn center_of_empty_panics() {
        let _ = BoundingBox::empty().center();
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Perpendicular foot inside the segment.
        assert!((point_segment_distance(Point::new(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        // Beyond endpoint b.
        assert!((point_segment_distance(Point::new(13.0, 4.0), a, b) - 5.0).abs() < 1e-12);
        // Degenerate zero-length segment.
        assert!((point_segment_distance(Point::new(3.0, 4.0), a, a) - 5.0).abs() < 1e-12);
    }
}
