//! # roadnet — road-network substrate for ReverseCloak
//!
//! Road networks as undirected graphs of junctions and segments, with
//! shortest-path routing, spatial indexing, synthetic map generators and a
//! text map format. This crate is the substrate that the ReverseCloak
//! cloaking algorithms ([`cloak`](https://docs.rs/cloak)) operate on: a
//! cloaking region is a connected set of [`SegmentId`]s.
//!
//! ## Quick start
//!
//! ```
//! use roadnet::{generate, path, NetworkStats};
//!
//! // The paper's evaluation map, structurally (6979 junctions, 9187 segments).
//! let net = generate::atlanta_like(42);
//! let stats = NetworkStats::compute(&net);
//! assert_eq!(stats.segments, 9187);
//!
//! // Route between two junctions.
//! let route = path::shortest_path(&net, roadnet::JunctionId(0), roadnet::JunctionId(100))
//!     .expect("connected map");
//! assert!(route.length > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod citygen;
pub mod generate;
pub mod geometry;
pub mod graph;
pub mod index;
pub mod io;
pub mod path;
pub mod stats;

pub use builder::{BuildError, RoadNetworkBuilder};
pub use citygen::{city, city_map, CityConfig};
pub use generate::{
    atlanta_like, demo_network, grid_city, irregular_city, radial_city, IrregularConfig,
};
pub use geometry::{BoundingBox, Point};
pub use graph::{Junction, JunctionId, RoadNetwork, Segment, SegmentId};
pub use index::{GraphIndex, IndexBudget, LandmarkTable, ReachIndex, SegmentIndex};
pub use path::{astar, segment_hop_distance, segments_within_hops, shortest_path, Route};
pub use stats::NetworkStats;
