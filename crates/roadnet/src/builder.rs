//! Incremental construction and validation of [`RoadNetwork`]s.

use crate::geometry::Point;
use crate::graph::{Junction, JunctionId, RoadNetwork, Segment, SegmentId};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Error returned when a network under construction is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A segment referenced a junction id that was never added.
    UnknownJunction(JunctionId),
    /// A segment connected a junction to itself.
    SelfLoop(JunctionId),
    /// The same pair of junctions was connected twice.
    DuplicateSegment(JunctionId, JunctionId),
    /// The finished network would have no junctions at all.
    EmptyNetwork,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownJunction(j) => write!(f, "unknown junction {j}"),
            BuildError::SelfLoop(j) => write!(f, "self-loop at junction {j}"),
            BuildError::DuplicateSegment(a, b) => {
                write!(f, "duplicate segment between {a} and {b}")
            }
            BuildError::EmptyNetwork => write!(f, "network has no junctions"),
        }
    }
}

impl Error for BuildError {}

/// Builder for [`RoadNetwork`].
///
/// ```
/// use roadnet::{builder::RoadNetworkBuilder, geometry::Point};
/// # fn main() -> Result<(), roadnet::builder::BuildError> {
/// let mut b = RoadNetworkBuilder::new();
/// let j0 = b.add_junction(Point::new(0.0, 0.0));
/// let j1 = b.add_junction(Point::new(100.0, 0.0));
/// b.add_segment(j0, j1)?;
/// let net = b.build()?;
/// assert_eq!(net.segment_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    junctions: Vec<Junction>,
    segments: Vec<Segment>,
    seen_pairs: HashSet<(u32, u32)>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly the given sizes.
    pub fn with_capacity(junctions: usize, segments: usize) -> Self {
        RoadNetworkBuilder {
            junctions: Vec::with_capacity(junctions),
            segments: Vec::with_capacity(segments),
            seen_pairs: HashSet::with_capacity(segments),
        }
    }

    /// Adds a junction at `position` and returns its id.
    pub fn add_junction(&mut self, position: Point) -> JunctionId {
        let id = JunctionId(self.junctions.len() as u32);
        self.junctions.push(Junction::new(id, position));
        id
    }

    /// Number of junctions added so far.
    pub fn junction_count(&self) -> usize {
        self.junctions.len()
    }

    /// Number of segments added so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Position of an already-added junction.
    pub fn junction_position(&self, id: JunctionId) -> Option<Point> {
        self.junctions.get(id.index()).map(|j| j.position())
    }

    /// Adds a straight segment between two junctions; its length is the
    /// Euclidean distance between them.
    ///
    /// # Errors
    ///
    /// Fails on unknown endpoints, self-loops and duplicate segments.
    pub fn add_segment(&mut self, a: JunctionId, b: JunctionId) -> Result<SegmentId, BuildError> {
        let pa = self
            .junction_position(a)
            .ok_or(BuildError::UnknownJunction(a))?;
        let pb = self
            .junction_position(b)
            .ok_or(BuildError::UnknownJunction(b))?;
        self.add_segment_with_length(a, b, pa.distance(pb))
    }

    /// Adds a segment with an explicit road length (for curvy roads whose
    /// length exceeds the straight-line distance).
    ///
    /// # Errors
    ///
    /// Fails on unknown endpoints, self-loops and duplicate segments.
    pub fn add_segment_with_length(
        &mut self,
        a: JunctionId,
        b: JunctionId,
        length: f64,
    ) -> Result<SegmentId, BuildError> {
        if self.junction_position(a).is_none() {
            return Err(BuildError::UnknownJunction(a));
        }
        if self.junction_position(b).is_none() {
            return Err(BuildError::UnknownJunction(b));
        }
        if a == b {
            return Err(BuildError::SelfLoop(a));
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if !self.seen_pairs.insert(key) {
            return Err(BuildError::DuplicateSegment(a, b));
        }
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment::new(id, a, b, length.max(0.0)));
        self.junctions[a.index()].push_incident(id);
        self.junctions[b.index()].push_incident(id);
        Ok(id)
    }

    /// Whether a segment between `a` and `b` already exists.
    pub fn has_segment(&self, a: JunctionId, b: JunctionId) -> bool {
        self.seen_pairs.contains(&(a.0.min(b.0), a.0.max(b.0)))
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Fails if no junction was added.
    pub fn build(self) -> Result<RoadNetwork, BuildError> {
        if self.junctions.is_empty() {
            return Err(BuildError::EmptyNetwork);
        }
        Ok(RoadNetwork::from_parts(self.junctions, self.segments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = RoadNetworkBuilder::new();
        let j = b.add_junction(Point::new(0.0, 0.0));
        assert_eq!(b.add_segment(j, j), Err(BuildError::SelfLoop(j)));
    }

    #[test]
    fn rejects_duplicate_segment_both_orders() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(1.0, 0.0));
        b.add_segment(j0, j1).unwrap();
        assert_eq!(
            b.add_segment(j1, j0),
            Err(BuildError::DuplicateSegment(j1, j0))
        );
        assert!(b.has_segment(j0, j1));
        assert!(b.has_segment(j1, j0));
    }

    #[test]
    fn rejects_unknown_junction() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        assert_eq!(
            b.add_segment(j0, JunctionId(7)),
            Err(BuildError::UnknownJunction(JunctionId(7)))
        );
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(
            RoadNetworkBuilder::new().build().unwrap_err(),
            BuildError::EmptyNetwork
        );
    }

    #[test]
    fn explicit_length_is_kept_and_clamped() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(1.0, 0.0));
        let j2 = b.add_junction(Point::new(2.0, 0.0));
        let s = b.add_segment_with_length(j0, j1, 42.0).unwrap();
        let s2 = b.add_segment_with_length(j1, j2, -5.0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.segment(s).length(), 42.0);
        assert_eq!(net.segment(s2).length(), 0.0);
    }

    #[test]
    fn incidence_lists_are_populated() {
        let mut b = RoadNetworkBuilder::new();
        let j0 = b.add_junction(Point::new(0.0, 0.0));
        let j1 = b.add_junction(Point::new(1.0, 0.0));
        let j2 = b.add_junction(Point::new(0.0, 1.0));
        let s0 = b.add_segment(j0, j1).unwrap();
        let s1 = b.add_segment(j0, j2).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.junction(j0).incident_segments(), &[s0, s1]);
        assert_eq!(net.junction(j0).degree(), 2);
        assert_eq!(net.junction(j1).degree(), 1);
    }

    #[test]
    fn display_of_errors() {
        assert_eq!(
            BuildError::SelfLoop(JunctionId(3)).to_string(),
            "self-loop at junction j3"
        );
        assert_eq!(
            BuildError::EmptyNetwork.to_string(),
            "network has no junctions"
        );
    }
}
