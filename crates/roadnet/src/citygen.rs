//! Seeded city-scale road-network generator.
//!
//! [`crate::generate::irregular_city`] is fine at the paper's Atlanta
//! scale (~9k segments) but its shape is a uniform jittered lattice: no
//! arterial structure, and construction goes through the builder's
//! hash-set duplicate check. This module generates a *structured* city —
//! radial arterials, ring roads, local street grids and highway spines,
//! the ingredients of an OSM-style degree distribution — and does it in
//! flat arenas sized for 100k+ segments: a grid-cell id table
//! (`Vec<u32>`), one packed edge arena, a union-find over `usize`
//! indices and a flat degree counter. Edges are deduplicated by sorting
//! packed `u64` keys instead of hashing, and the finished
//! junction/segment arenas go straight to the CSR constructor — no
//! `Vec<Vec<_>>` adjacency intermediate is ever materialized.
//!
//! Guarantees, property-tested in this module:
//!
//! * deterministic per seed (same seed → identical network, CSR tables
//!   included);
//! * connected (spanning pass over the candidate lattice, leftover
//!   islands stitched with connector roads);
//! * exact segment count;
//! * every segment length strictly positive (jitter is bounded below
//!   half the cell spacing, so adjacent lattice points cannot collide —
//!   the movement model divides by the minimum segment length).

use crate::generate::Dsu;
use crate::geometry::Point;
use crate::graph::{Junction, JunctionId, RoadNetwork, Segment, SegmentId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Edge classes, in priority order: when deduplication finds the same
/// junction pair in two classes, the lower class wins (a highway stays a
/// highway even where it overlaps a local street).
const CLASS_SPINE: u8 = 0;
const CLASS_ARTERIAL: u8 = 1;
const CLASS_RING: u8 = 2;
const CLASS_LOCAL: u8 = 3;

/// Maximum junction displacement as a fraction of the cell spacing.
/// Must stay well below 0.5 so two adjacent lattice points can never
/// meet (minimum segment length stays ≳ 0.4 × spacing).
const JITTER: f64 = 0.28;
/// Probability that a candidate local street is offered to the
/// selection pass at all — the dropouts produce dead ends and T
/// junctions like a real street map.
const LOCAL_KEEP: f64 = 0.8;
/// Radial arterials leaving the center.
const SPOKES: usize = 8;
/// Ring roads, as fractions of the city radius.
const RING_FRACTIONS: [f64; 3] = [0.35, 0.6, 0.85];
/// Highway spines crossing the whole disc.
const SPINES: usize = 2;
/// Observed segments-per-junction ratio of the paper's Atlanta extract
/// (9187 / 6979); the junction budget is derived from it so the mean
/// degree lands near the OSM-typical ≈2.6.
const SEGMENTS_PER_JUNCTION: f64 = 1.32;

/// Configuration for [`city`].
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// PRNG seed; every byte of the output is a function of this.
    pub seed: u64,
    /// Exact number of segments the generated city will have.
    pub segments: usize,
    /// Lattice spacing in meters between local-street junctions.
    pub spacing: f64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            seed: 42,
            segments: 10_000,
            spacing: 100.0,
        }
    }
}

/// Convenience wrapper: a [`city`] with the default spacing.
pub fn city_map(seed: u64, segments: usize) -> RoadNetwork {
    city(&CityConfig {
        seed,
        segments,
        ..Default::default()
    })
}

/// Generates a connected city with exactly `cfg.segments` segments:
/// a disc of jittered local street grid crossed by radial arterials,
/// ring roads and highway spines.
///
/// # Panics
///
/// Panics if `cfg.segments < 256` (the backbone alone needs room) or
/// `cfg.spacing` is not strictly positive.
///
/// ```
/// use roadnet::citygen::city_map;
/// let net = city_map(7, 2000);
/// assert_eq!(net.segment_count(), 2000);
/// assert!(net.is_connected());
/// ```
pub fn city(cfg: &CityConfig) -> RoadNetwork {
    assert!(cfg.segments >= 256, "city generator needs >= 256 segments");
    assert!(cfg.spacing > 0.0, "spacing must be positive");
    let s = cfg.spacing;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Junction budget from the target mean degree; the city is the disc
    // of lattice cells within `radius` of the center.
    let junction_goal = (cfg.segments as f64 / SEGMENTS_PER_JUNCTION).ceil();
    let radius = s * (junction_goal / std::f64::consts::PI).sqrt();
    let half = (radius / s).ceil() as i64;
    let dim = (2 * half + 1) as usize;

    // Flat cell → junction-id table over the bounding square; u32::MAX
    // marks cells outside the disc.
    let mut cell_ids = vec![u32::MAX; dim * dim];
    let cell_index =
        |gx: i64, gy: i64| -> usize { ((gy + half) as usize) * dim + (gx + half) as usize };
    let mut positions: Vec<Point> = Vec::with_capacity(junction_goal as usize + dim);
    for gy in -half..=half {
        for gx in -half..=half {
            let (cx, cy) = (gx as f64 * s, gy as f64 * s);
            if cx.hypot(cy) > radius {
                continue;
            }
            let dx = rng.gen_range(-JITTER..=JITTER) * s;
            let dy = rng.gen_range(-JITTER..=JITTER) * s;
            cell_ids[cell_index(gx, gy)] = positions.len() as u32;
            positions.push(Point::new(cx + dx, cy + dy));
        }
    }
    let n = positions.len();
    let at = |gx: i64, gy: i64| -> u32 {
        if gx < -half || gx > half || gy < -half || gy > half {
            u32::MAX
        } else {
            cell_ids[cell_index(gx, gy)]
        }
    };
    let snap = |x: f64, y: f64| -> u32 { at((x / s).round() as i64, (y / s).round() as i64) };

    // Candidate edge arena: (a, b, class) with a, b junction ids.
    let mut edges: Vec<(u32, u32, u8)> = Vec::with_capacity(2 * n + n / 2);

    // Local street grid: orthogonal lattice edges, each offered with
    // probability LOCAL_KEEP.
    for gy in -half..=half {
        for gx in -half..=half {
            let a = at(gx, gy);
            if a == u32::MAX {
                continue;
            }
            for (nx, ny) in [(gx + 1, gy), (gx, gy + 1)] {
                let b = at(nx, ny);
                if b != u32::MAX && rng.gen_bool(LOCAL_KEEP) {
                    edges.push((a, b, CLASS_LOCAL));
                }
            }
        }
    }

    // Radial arterials: walk each spoke outward one cell at a time,
    // snapping samples to the lattice and chaining consecutive snaps.
    for k in 0..SPOKES {
        let theta: f64 =
            std::f64::consts::TAU * k as f64 / SPOKES as f64 + rng.gen_range(-0.08..=0.08);
        let (ct, st) = (theta.cos(), theta.sin());
        let mut prev = at(0, 0);
        let mut t = s;
        while t <= radius {
            let cur = snap(t * ct, t * st);
            if cur != u32::MAX {
                if prev != u32::MAX && cur != prev {
                    edges.push((prev, cur, CLASS_ARTERIAL));
                }
                prev = cur;
            }
            t += s;
        }
    }

    // Ring roads: closed loops of snapped samples at fixed radii.
    for &f in &RING_FRACTIONS {
        let r = f * radius;
        let steps = ((std::f64::consts::TAU * r) / (1.4 * s)).ceil().max(8.0) as usize;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut first = u32::MAX;
        let mut prev = u32::MAX;
        for i in 0..steps {
            let ang = phase + std::f64::consts::TAU * i as f64 / steps as f64;
            let cur = snap(r * ang.cos(), r * ang.sin());
            if cur == u32::MAX {
                continue;
            }
            if first == u32::MAX {
                first = cur;
            }
            if prev != u32::MAX && cur != prev {
                edges.push((prev, cur, CLASS_RING));
            }
            prev = cur;
        }
        if prev != u32::MAX && first != u32::MAX && prev != first {
            edges.push((prev, first, CLASS_RING));
        }
    }

    // Highway spines: two long chords through the center with sparse
    // interchanges (samples every 3 cells).
    for k in 0..SPINES {
        let ang: f64 = std::f64::consts::FRAC_PI_2 * k as f64 + rng.gen_range(-0.2..=0.2);
        let (ca, sa) = (ang.cos(), ang.sin());
        let mut prev = u32::MAX;
        let mut t = -(radius * 0.95);
        while t <= radius * 0.95 {
            let cur = snap(t * ca, t * sa);
            if cur != u32::MAX {
                if prev != u32::MAX && cur != prev {
                    edges.push((prev, cur, CLASS_SPINE));
                }
                prev = cur;
            }
            t += 3.0 * s;
        }
    }

    // Deduplicate by packed (min, max) key; the sort puts the strongest
    // class first within a pair, so `dedup` keeps it.
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            std::mem::swap(&mut e.0, &mut e.1);
        }
    }
    edges.sort_unstable_by_key(|&(a, b, c)| (((a as u64) << 32) | b as u64, c));
    edges.dedup_by_key(|&mut (a, b, _)| (a, b));

    // Selection: the backbone (spines, arterials, rings) is always
    // kept; local streets fill a spanning pass first (connectivity),
    // then top up to the exact segment target in shuffled order.
    let mut backbone: Vec<(u32, u32, u8)> = Vec::new();
    let mut locals: Vec<(u32, u32)> = Vec::new();
    for &(a, b, c) in &edges {
        if c == CLASS_LOCAL {
            locals.push((a, b));
        } else {
            backbone.push((a, b, c));
        }
    }
    locals.shuffle(&mut rng);
    let mut dsu = Dsu::new(n);
    let mut chosen: Vec<(u32, u32, u8)> = Vec::with_capacity(cfg.segments);
    for &(a, b, c) in &backbone {
        dsu.union(a as usize, b as usize);
        chosen.push((a, b, c));
    }
    let mut extras: Vec<(u32, u32)> = Vec::new();
    for &(a, b) in &locals {
        if dsu.union(a as usize, b as usize) {
            chosen.push((a, b, CLASS_LOCAL));
        } else {
            extras.push((a, b));
        }
    }
    // Stitch leftover islands (cells whose every local candidate was
    // dropped) with direct connector roads.
    let mut roots: Vec<usize> = (0..n).map(|v| dsu.find(v)).collect();
    roots.sort_unstable();
    roots.dedup();
    if roots.len() > 1 {
        let base = roots[0];
        for &r in &roots[1..] {
            chosen.push((base as u32, r as u32, CLASS_LOCAL));
            dsu.union(base, r);
        }
    }
    assert!(
        chosen.len() <= cfg.segments,
        "backbone + spanning tree already needs {} segments; raise the target above {}",
        chosen.len(),
        cfg.segments
    );
    for &(a, b) in &extras {
        if chosen.len() == cfg.segments {
            break;
        }
        chosen.push((a, b, CLASS_LOCAL));
    }
    assert_eq!(
        chosen.len(),
        cfg.segments,
        "lattice candidates exhausted before reaching the segment target"
    );

    // Degree-count prepass so every incidence list is allocated at its
    // exact final size, then assemble the arenas and hand them to the
    // CSR constructor.
    let mut degree = vec![0u32; n];
    for &(a, b, _) in &chosen {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let mut junctions: Vec<Junction> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| Junction::with_capacity(JunctionId(i as u32), p, degree[i] as usize))
        .collect();
    let mut segments: Vec<Segment> = Vec::with_capacity(cfg.segments);
    for (i, &(a, b, class)) in chosen.iter().enumerate() {
        let id = SegmentId(i as u32);
        let straight = positions[a as usize].distance(positions[b as usize]);
        // Local streets curve 0–10%; the backbone is engineered straight.
        let length = if class == CLASS_LOCAL {
            straight * (1.0 + rng.gen_range(0.0..0.10))
        } else {
            straight
        };
        segments.push(Segment::new(id, JunctionId(a), JunctionId(b), length));
        junctions[a as usize].push_incident(id);
        junctions[b as usize].push_incident(id);
    }
    RoadNetwork::from_parts(junctions, segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_connected() {
        for &target in &[256usize, 2000, 5000] {
            let net = city_map(3, target);
            assert_eq!(net.segment_count(), target);
            assert!(net.is_connected(), "{target}-segment city disconnected");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = city_map(9, 3000);
        let b = city_map(9, 3000);
        // Derived PartialEq covers junctions, segments and both CSR
        // tables, so equality here means identical CSR bytes.
        assert_eq!(a, b);
        let c = city_map(10, 3000);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_osm_like() {
        let net = city_map(5, 5000);
        let n = net.junction_count() as f64;
        let mean = 2.0 * net.segment_count() as f64 / n;
        assert!(
            (2.2..=3.2).contains(&mean),
            "mean degree {mean} outside the street-map band"
        );
        let max = net.junctions().map(|j| j.degree()).max().unwrap();
        assert!(max <= 16, "junction degree {max} is not street-like");
        let high = net.junctions().filter(|j| j.degree() >= 5).count() as f64 / n;
        assert!(high <= 0.08, "{high} of junctions have degree >= 5");
        let dead_ends = net.junctions().filter(|j| j.degree() == 1).count();
        assert!(dead_ends > 0, "a real city has dead ends");
    }

    #[test]
    fn every_length_is_positive_and_at_least_straight_line() {
        let net = city_map(11, 4000);
        let mut min_len = f64::INFINITY;
        for seg in net.segments() {
            let straight = net
                .junction(seg.a())
                .position()
                .distance(net.junction(seg.b()).position());
            assert!(seg.length() >= straight - 1e-9);
            min_len = min_len.min(seg.length());
        }
        // The movement model divides by the minimum segment length.
        assert!(min_len > 0.0, "zero-length segment generated");
    }

    #[test]
    #[should_panic(expected = "256")]
    fn tiny_targets_are_rejected() {
        let _ = city_map(1, 100);
    }
}
