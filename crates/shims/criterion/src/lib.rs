//! Offline stand-in for the `criterion` crate: a small wall-clock
//! benchmark harness with the `Criterion` / `BenchmarkGroup` /
//! `Bencher` / `BenchmarkId` surface the workspace's benches use. It
//! warms up, measures for the configured time, and prints mean time per
//! iteration (no statistical analysis or HTML reports). Swap back to the
//! real crate by editing the manifests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let (mean_ns, iters) = run_one(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        report(name, mean_ns, iters);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (mean_ns, iters) = run_one(
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut |b| f(b, input),
        );
        report(&format!("{}/{}", self.name, id), mean_ns, iters);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let (mean_ns, iters) = run_one(
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
        report(&format!("{}/{}", self.name, id), mean_ns, iters);
        self
    }

    /// Ends the group (printing is already done per-bench).
    pub fn finish(&mut self) {}
}

/// Runs the closure's `iter` loops for warm-up then measurement; returns
/// (mean ns/iter, total measured iterations).
fn run_one<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measure: Duration,
    _sample_size: usize,
    f: &mut F,
) -> (f64, u64) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up.
    let t0 = Instant::now();
    while t0.elapsed() < warm_up {
        f(&mut b);
    }
    // Measurement.
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    let t0 = Instant::now();
    while t0.elapsed() < measure || b.iters == 0 {
        f(&mut b);
    }
    let mean = if b.iters == 0 {
        0.0
    } else {
        b.elapsed.as_secs_f64() * 1e9 / b.iters as f64
    };
    (mean, b.iters)
}

fn report(label: &str, mean_ns: f64, iters: u64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{label:<48} time: {value:>10.3} {unit}/iter  ({iters} iters)");
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one batch of calls to `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates() {
        let mut c = Criterion {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("RGE", 5).to_string(), "RGE/5");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
