//! Offline stand-in for `serde_derive`: the `serde` shim's traits are
//! blanket-implemented, so these derives only need to exist — they emit
//! nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` (the shim trait is blanket-implemented).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` (the shim trait is blanket-implemented).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
