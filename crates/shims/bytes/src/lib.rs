//! Offline stand-in for the `bytes` crate: `Bytes`, `BytesMut`, and the
//! `Buf`/`BufMut` traits over the subset the workspace uses (little-endian
//! put/get, slices, freeze). Swap back to the real crate by editing the
//! manifests.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential big/little-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential reads that advance a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"RCLK");
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0123_4567_89ab_cdef);
        b.put_f64_le(1.5);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cur.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"RCLK");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(cur.get_f64_le(), 1.5);
        assert!(!cur.has_remaining());
        assert_eq!(frozen.to_vec().len(), 25);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_the_end_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
