//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace crate
//! provides the slice of the `rand` 0.8 API the repo uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`] (a
//! xoshiro256++ generator), [`thread_rng`], [`random`], and
//! [`seq::SliceRandom::shuffle`]. Swap back to the real crate by editing
//! the workspace manifests — the API surface is call-compatible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// One uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// One uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let pick = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(pick as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                lo.wrapping_add(pick as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(pick as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                lo.wrapping_add(pick as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let v = self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start);
                // Rounding can land exactly on the excluded end bound;
                // nudge one ulp down to keep the half-open contract.
                if v >= self.end {
                    let down = if self.end > 0.0 {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else if self.end < 0.0 {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    } else {
                        -<$t>::from_bits(1) // just below +0.0
                    };
                    down.max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// The standard seedable generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Seeds from four full words (used by [`super::thread_rng`] so
        /// process entropy is not collapsed through one `u64`).
        pub fn from_seed_words(words: [u64; 4]) -> Self {
            // Run each word through splitmix so zero/low-entropy words
            // still decorrelate, and avoid the all-zero state.
            let mut s = [0u64; 4];
            for (w, seed) in s.iter_mut().zip(words) {
                let mut state = seed;
                *w = split_mix64(&mut state);
            }
            if s == [0u64; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = split_mix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A per-call entropy-seeded generator (see [`super::thread_rng`]).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(super) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh entropy-seeded generator. (The real crate returns a handle to
/// a thread-local; for this repo's usage a per-call generator suffices.)
///
/// Seed material is four independent OS-entropy draws (via
/// `RandomState`, which std seeds from the operating system) mixed with
/// the clock and a process-wide counter, loaded into the generator's
/// full 256-bit state — entropy is not collapsed through a single
/// `u64`.
///
/// **Not cryptographically secure.** xoshiro256++ is statistically
/// strong but invertible: anyone observing raw outputs can reconstruct
/// the state. The real `rand` crate's `thread_rng` (ChaCha-based) is
/// required before any key-secrecy claim holds — this shim exists only
/// because the build environment has no registry access; swap it out
/// via `[workspace.dependencies]` for production use.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let per_call = COUNTER
        .fetch_add(0x9e37_79b9, Ordering::Relaxed)
        .wrapping_mul(0x2545_f491_4f6c_dd1d);
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        // Each RandomState draws fresh OS-seeded hasher keys.
        let mut h = RandomState::new().build_hasher();
        h.write_u64(nanos ^ per_call);
        h.write_usize(i);
        *w = h.finish() ^ per_call.rotate_left(i as u32 * 16);
    }
    rngs::ThreadRng(rngs::StdRng::from_seed_words(words))
}

/// One entropy-seeded sample (`rand::random()`).
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::Rng;

    /// Extension trait for random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn float_range_never_returns_the_end_bound() {
        // 1.0..2.0 is the worst case: the largest unit value rounds the
        // product to exactly 2.0 without the ulp clamp.
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let x = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&x), "{x}");
            let y = rng.gen_range(1.0f32..2.0);
            assert!((1.0..2.0).contains(&y), "{y}");
        }
        // Synthetic check of the clamp itself on the maximal unit draw.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let x = MaxRng.gen_range(1.0f64..2.0);
        assert!(x < 2.0, "{x}");
        let y = MaxRng.gen_range(-2.0f64..-1.0);
        assert!((-2.0..-1.0).contains(&y), "{y}");
    }

    #[test]
    fn residues_are_roughly_balanced() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = rngs::StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes all points"
        );
    }
}
