//! Offline stand-in for the `parking_lot` crate: non-poisoning `Mutex`
//! and `RwLock` over `std::sync`. API-compatible with the subset the
//! workspace uses; swap back to the real crate by editing the manifests.

#![forbid(unsafe_code)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
