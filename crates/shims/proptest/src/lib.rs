//! Offline stand-in for the `proptest` crate: the `proptest!` macro,
//! `any`, integer/float range strategies, `collection::vec`, and the
//! `prop_assert*` family, over a deterministic per-test RNG. No
//! shrinking — a failing case panics with its inputs so it can be
//! reproduced by hand. Swap back to the real crate by editing the
//! manifests.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` (not counted as a case).
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic test RNG (xoshiro256++ seeded from the test name, or
/// from `PROPTEST_SEED` when set).
pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError};

    /// The RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from the test name (override with the
        /// `PROPTEST_SEED` environment variable).
        pub fn deterministic(name: &str) -> Self {
            let mut state = match std::env::var("PROPTEST_SEED") {
                Ok(v) => v.parse().unwrap_or(0xdef0_5eed),
                Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                }),
            };
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use test_runner::TestRng;

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types generatable over their whole domain via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        (mantissa - 0.5) * 2f64.powi(exp)
    }
}

/// Marker strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let pick = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(pick as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let pick = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(pick as $t)
            }
        }
    )*};
}
impl_strategy_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (unit as $t) * (self.end - self.start);
                // Rounding can land exactly on the excluded end bound;
                // nudge one ulp down to keep the half-open contract.
                if v >= self.end {
                    let down = if self.end > 0.0 {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else if self.end < 0.0 {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    } else {
                        -<$t>::from_bits(1) // just below +0.0
                    };
                    down.max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// String strategies from a small regex subset: a sequence of `.` or
/// `[class]` atoms, each with an optional `{m}`/`{m,n}` repeat. This
/// covers the patterns the workspace's tests use; richer regexes panic
/// loudly instead of silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let mut out = String::new();
        for (set, min, max) in &atoms {
            let span = (max - min + 1) as u128;
            let n = min + ((rng.next_u64() as u128 * span) >> 64) as usize;
            for _ in 0..n {
                let i = ((rng.next_u64() as u128 * set.len() as u128) >> 64) as usize;
                out.push(set[i]);
            }
        }
        out
    }
}

type RegexAtoms = Vec<(Vec<char>, usize, usize)>;

fn parse_simple_regex(pattern: &str) -> Option<RegexAtoms> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '.' => (' '..='~').collect(),
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = chars.next()?;
                    match c {
                        ']' => break,
                        '\\' => set.push(unescape(chars.next()?)),
                        _ => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = match chars.next()? {
                                    '\\' => unescape(chars.next()?),
                                    ']' => {
                                        // Trailing `-` is a literal.
                                        set.push(c);
                                        set.push('-');
                                        break;
                                    }
                                    h => h,
                                };
                                set.extend(c..=hi);
                            } else {
                                set.push(c);
                            }
                        }
                    }
                }
                set
            }
            '\\' => vec![unescape(chars.next()?)],
            _ => vec![c],
        };
        if set.is_empty() {
            return None;
        }
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let c = chars.next()?;
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
                None => {
                    let m = spec.trim().parse().ok()?;
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        if max < min {
            return None;
        }
        atoms.push((set, min, max));
    }
    Some(atoms)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s of a given element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u128;
            let n = self.len.start + (((rng.next_u64() as u128 * span) >> 64) as usize);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(20).max(1000),
                                "too many rejected cases in {}", stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {:#?}",
                                msg,
                                ($( (stringify!($arg), &$arg) ),+ ,)
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Skips the current case when `cond` is false (not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..17, y in 0usize..3, z in -2.0f64..2.0) {
            prop_assert!((5..17).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((-2.0..2.0).contains(&z), "z out of range: {}", z);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_skips_without_failing(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a.min(b), b.min(a));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn string_strategy_matches_class(s in "[a-z0-9 .\\-\n#]{0,32}") {
            prop_assert!(s.len() <= 32);
            for c in s.chars() {
                prop_assert!(
                    c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || " .-\n#".contains(c),
                    "unexpected char {:?}",
                    c
                );
            }
        }

        #[test]
        fn dot_strategy_is_printable(s in ".{0,100}") {
            prop_assert!(s.len() <= 100);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
