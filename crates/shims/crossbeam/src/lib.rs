//! Offline stand-in for the `crossbeam` crate: a multi-producer
//! multi-consumer bounded channel (`crossbeam::channel`) built on
//! `Mutex` + `Condvar`. API-compatible with the subset the workspace
//! uses; swap back to the real crate by editing the manifests.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (rendezvous channels are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "this channel shim requires a positive capacity");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap.min(1024)),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = bounded::<u64>(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map(|_| ()).map_err(|_| ()));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }
}
