//! Offline stand-in for the `serde` crate. The workspace derives
//! `Serialize`/`Deserialize` on its public types but never feeds them to
//! a serde *format* (the wire codecs are hand-rolled), so marker traits
//! with blanket impls and no-op derives are sufficient. Swap back to the
//! real crate by editing the manifests.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
