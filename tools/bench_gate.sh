#!/usr/bin/env bash
# Tick-latency regression gate for CI's bench job.
#
# Usage: tools/bench_gate.sh COMMITTED.json FRESH.json [TOLERANCE_PCT]
#
# COMMITTED.json is the checked-in baseline — BENCH_pipeline.json or
# BENCH_city.json (PR-boundary points; the *last* occurrence of each
# config key is the latest point).
# FRESH.json is the quick-mode point the job just measured. The gate
# fails when any config's fresh mean_tick_ms exceeds the committed one
# by more than TOLERANCE_PCT (default 25 — wide enough for the noise of
# shared 1-CPU runners, tight enough to catch a real hot-path
# regression). Configs missing from either file are skipped (quick mode
# and committed points may carry different cell sets across PRs).
set -euo pipefail

committed=${1:?usage: bench_gate.sh COMMITTED.json FRESH.json [TOLERANCE_PCT]}
fresh=${2:?usage: bench_gate.sh COMMITTED.json FRESH.json [TOLERANCE_PCT]}
tolerance=${3:-25}

# Extracts the last committed value of metric `$3` (default
# mean_tick_ms) for config key `$2`, relying on the file's flat
# `"cfg": { "metric": N, ... }` formatting.
extract() {
    grep -o "\"$2\": *{ *\"${3:-mean_tick_ms}\": *[0-9.]*" "$1" | tail -1 \
        | grep -o '[0-9.]*$' || true
}

status=0
checked=0
# Entries are `cfg` (gating mean_tick_ms) or `cfg:metric`. The city
# cells come from BENCH_city.json / the bench-city job's quick-mode
# artifact; its build-cost cells carry `mean_ms` instead of a tick
# latency. Quick mode only measures the 10k column, so the 100k cells
# skip in CI and gate only when both files carry them.
for entry in rge_raw rge_verified rge_attacked rple_raw rple_verified rple_attacked keyed_draw \
    city_gen_10k:mean_ms city_index_10k:mean_ms city_tick_10k_10k \
    city_gen_100k:mean_ms city_index_100k:mean_ms city_tick_10k_100k \
    city_tick_100k_10k city_tick_100k_100k; do
    cfg=${entry%%:*}
    metric=${entry#"$cfg"}
    metric=${metric#:}
    base=$(extract "$committed" "$cfg" "$metric")
    cur=$(extract "$fresh" "$cfg" "$metric")
    if [ -z "$base" ] || [ -z "$cur" ]; then
        echo "gate: $cfg — skipped (not present in both files)"
        continue
    fi
    checked=$((checked + 1))
    if awk -v c="$cur" -v b="$base" -v t="$tolerance" \
        'BEGIN { exit !(c > b * (1 + t / 100)) }'; then
        echo "gate: $cfg REGRESSED — fresh ${cur} ms/tick vs committed ${base} ms/tick (> +${tolerance}%)"
        status=1
    else
        echo "gate: $cfg ok — fresh ${cur} ms/tick vs committed ${base} ms/tick"
    fi
done

if [ "$checked" -eq 0 ]; then
    echo "gate: no comparable configs found — refusing to pass vacuously" >&2
    exit 2
fi
exit $status
