#!/usr/bin/env bash
# Checks that every relative markdown link target in the given files
# exists on disk (anchors and absolute URLs are skipped). Used by the CI
# docs job; run locally as `tools/check_links.sh README.md docs/*.md`.
set -euo pipefail

fail=0
for file in "$@"; do
    if [ ! -f "$file" ]; then
        echo "missing file: $file" >&2
        fail=1
        continue
    fi
    dir=$(dirname "$file")
    # Extract the (target) of every [text](target) markdown link.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Drop a trailing #anchor from relative targets.
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$file: broken link -> $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$fail" -ne 0 ]; then
    echo "link check failed" >&2
    exit 1
fi
echo "all relative links resolve"
