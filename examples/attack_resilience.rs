//! Attack resilience: what an adversary without keys can and cannot do.
//!
//! Reproduces the paper's **experiment B5** (privacy analysis of the
//! keyless adversary, ICDCS 2017 §V): single-cloak guessing, transition
//! uniformity, posterior entropy, and exact keyed recovery. The
//! *longitudinal* version of this experiment — a temporal adversary
//! correlating the whole per-tick receipt stream against an NRE
//! baseline control — is `rcloak attack` (see
//! `cloak::attack::temporal`).
//!
//! Quantifies the paper's privacy claim — "without the secret key, the
//! cloaked region preserves strong privacy properties, allowing no
//! additional information to be inferred even when the adversary has
//! complete knowledge about the location perturbation algorithm used":
//!
//! 1. keyless guessing succeeds only at the uniform 1/|region| rate,
//! 2. the first-transition distribution over the frontier is uniform,
//! 3. the posterior entropy over the user's segment is log2(|region|),
//! 4. with the key, recovery is exact (zero error).
//!
//! Run with: `cargo run --release --example attack_resilience`

use cloak::attack;
use reversecloak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = roadnet::grid_city(9, 9, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let engine = RgeEngine::new();
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(8))
        .level(LevelRequirement::with_k(16))
        .build()?;
    let user = SegmentId(70);

    // 1. Keyless guessing over many fresh anonymizations.
    let (hit, predicted) =
        attack::guess_success_rate(&net, &snapshot, user, &profile, &engine, 500, 11);
    println!("keyless guessing over 500 cloaks:");
    println!("  measured hit rate:  {hit:.4}");
    println!("  uniform prediction: {predicted:.4} (1/|region|)");
    assert!((hit - predicted).abs() < 0.05);

    // 2. First-transition uniformity over the frontier.
    let (support, dev) = attack::selection_uniformity(&net, user, &engine, 4000, 5);
    println!("first-transition distribution over {support} linked segments:");
    println!("  max deviation from uniform: {dev:.4}");
    assert!(dev < 0.05);

    // 3. Posterior entropy of one concrete cloak.
    let keys: Vec<Key256> = KeyManager::from_seed(2, 77)
        .iter()
        .map(|(_, k)| k)
        .collect();
    let out = cloak::anonymize(&net, &snapshot, user, &profile, &keys, 9, &engine)?;
    let entropy = attack::l0_posterior_entropy(&out.payload.segments);
    println!(
        "one cloak of {} segments: adversary entropy {entropy:.2} bits (max for this size: {:.2})",
        out.payload.region_size(),
        (out.payload.region_size() as f64).log2()
    );
    let peel = attack::peel_candidates(&net, &out.payload.segments);
    println!(
        "  single-step peel candidates without a key: {} of {} segments",
        peel.len(),
        out.payload.region_size()
    );

    // 4. With the key: exact recovery.
    let manager = KeyManager::from_seed(2, 77);
    let view = cloak::deanonymize(
        &net,
        &out.payload,
        &manager.keys_down_to(Level(0))?,
        &engine,
    )?;
    assert_eq!(view.segments, vec![user]);
    println!("with the keys: exact segment recovered ({user}), error = 0");

    // A wrong key fails loudly instead of leaking.
    let wrong = Key256::from_seed(123_456_789);
    let err = cloak::deanonymize(&net, &out.payload, &[(Level(2), wrong)], &engine).unwrap_err();
    println!("with a wrong key: {err}");
    Ok(())
}
