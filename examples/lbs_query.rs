//! End-to-end LBS scenario: the provider serves a *cloaked* nearest-POI
//! query, and the user refines locally — privacy without losing the
//! answer.
//!
//! This demonstrates why the paper bounds the region with σs: the
//! candidate answer set (the LBS's work and the download size) grows with
//! the region.
//!
//! Run with: `cargo run --release --example lbs_query`

use lbs::{nearest_query, range_query, refine_nearest, PoiCategory, PoiStore};
use reversecloak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = roadnet::grid_city(12, 12, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let mut rng = rand::thread_rng();
    let store = PoiStore::generate(&net, 150, &mut rng);
    println!(
        "city: {} segments, {} POIs",
        net.segment_count(),
        store.len()
    );

    let user = SegmentId(130);
    let engine = RgeEngine::new();

    for k in [5u32, 15, 40] {
        let profile = PrivacyProfile::builder()
            .level(LevelRequirement::with_k(k))
            .build()?;
        let manager = KeyManager::generate(1, &mut rng);
        let keys: Vec<Key256> = manager.iter().map(|(_, key)| key).collect();
        let (out, _) = cloak::anonymize_with_retry(
            &net,
            &snapshot,
            user,
            &profile,
            &keys,
            rand::random(),
            &engine,
            8,
        )?;

        // The LBS sees only the region.
        let answer = nearest_query(&net, &store, &out.payload.segments, PoiCategory::Restaurant);
        // The user refines with its true position.
        let chosen = refine_nearest(&net, &answer.candidates, user).expect("candidates exist");
        // Ground truth from an exact (non-private) query.
        let exact = nearest_query(&net, &store, &[user], PoiCategory::Restaurant);
        let truth = refine_nearest(&net, &exact.candidates, user).expect("some restaurant");

        println!(
            "k={k:>2}: region {:>3} segments -> {:>3} candidates ({} segs visited); \
             refined to {} ({})",
            out.payload.region_size(),
            answer.len(),
            answer.segments_visited,
            chosen.id,
            if chosen.id == truth.id {
                "matches the exact answer"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(chosen.id, truth.id);
    }

    // A range query: everything within 400 m of *any* possible position.
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(10))
        .build()?;
    let manager = KeyManager::generate(1, &mut rng);
    let keys: Vec<Key256> = manager.iter().map(|(_, key)| key).collect();
    let (out, _) = cloak::anonymize_with_retry(
        &net,
        &snapshot,
        user,
        &profile,
        &keys,
        rand::random(),
        &engine,
        8,
    )?;
    let gas = range_query(
        &net,
        &store,
        &out.payload.segments,
        PoiCategory::GasStation,
        400.0,
    );
    println!(
        "\nrange query (gas stations within 400 m of the k=10 region): {} candidates",
        gas.len()
    );
    Ok(())
}
