//! Continuous anonymization of a moving user.
//!
//! A car drives through simulated traffic; every 30 simulated seconds its
//! current segment is re-cloaked (fresh nonce, same keys and profile) and
//! later each published payload is independently de-anonymized back to the
//! exact segment — reversibility holds along the whole trajectory.
//!
//! Run with: `cargo run --release --example trace_anonymization`

use mobisim::Trace;
use reversecloak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = roadnet::grid_city(12, 12, 100.0);
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars: 1500,
            seed: 21,
            ..Default::default()
        },
    );

    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(6))
        .level(LevelRequirement::with_k(12))
        .build()?;
    let manager = KeyManager::from_seed(2, 5150);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let engine = RgeEngine::new();
    let tracked = mobisim::CarId(9);

    let mut trace = Trace::new();
    let mut published: Vec<(f64, SegmentId, CloakPayloadBox)> = Vec::new();
    for epoch in 0..10 {
        sim.run(6, 5.0); // 30 simulated seconds
        trace.record_car(&sim, tracked);
        let snapshot = OccupancySnapshot::capture(&sim);
        let segment = sim.car(tracked).expect("tracked car exists").segment();
        let nonce = 0xACE0_0000 + epoch as u64;
        match cloak::anonymize_with_retry(
            sim.network(),
            &snapshot,
            segment,
            &profile,
            &keys,
            nonce,
            &engine,
            8,
        ) {
            Ok((out, attempts)) => {
                println!(
                    "t={:>4.0}s car at {:>4}: region {} segments ({} attempt{})",
                    sim.clock(),
                    segment.to_string(),
                    out.payload.region_size(),
                    attempts,
                    if attempts == 1 { "" } else { "s" }
                );
                published.push((sim.clock(), segment, CloakPayloadBox(out.payload)));
            }
            Err(e) => println!("t={:>4.0}s cloaking failed: {e}", sim.clock()),
        }
    }

    // The trajectory was recorded like a GTMobiSim trace.
    println!(
        "\nrecorded {} trace samples for {tracked}",
        trace.trajectory(tracked).len()
    );

    // Later, a fully privileged requester de-anonymizes every epoch.
    let peel = manager.keys_down_to(Level(0))?;
    let mut exact = 0;
    for (t, segment, payload) in &published {
        let view = cloak::deanonymize(sim.network(), &payload.0, &peel, &engine)?;
        assert_eq!(view.segments, vec![*segment], "epoch at t={t}");
        exact += 1;
    }
    println!("de-anonymized all {exact} published cloaks back to the exact segment");
    Ok(())
}

/// Newtype so the example keeps the payload by value without pulling the
/// cloak type into the function signature noise.
struct CloakPayloadBox(cloak::CloakPayload);
