//! Walkthroughs of the paper's Figures 1–3.
//!
//! * `fig1` — multilevel reversible anonymization on a small sub-graph:
//!   per-level segment sets added with each key, then peeled back.
//! * `fig2` — the RGE transition table, with the paper's exact 3×3 cell
//!   values and the forward s8→s14 / backward s14→s8 walkthrough.
//! * `fig3` — RPLE pre-assigned forward/backward transition lists and the
//!   `Ri mod T` index symmetry.
//!
//! Run with: `cargo run --example toolkit_demo -- [fig1|fig2|fig3|all]`

use cloak::{RegionState, TransitionTable};
use reversecloak::prelude::*;
use roadnet::grid_city;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "fig1" => fig1()?,
        "fig2" => fig2(),
        "fig3" => fig3(),
        "all" => {
            fig1()?;
            fig2();
            fig3();
        }
        other => {
            eprintln!("unknown figure `{other}`; use fig1, fig2, fig3 or all");
            std::process::exit(2);
        }
    }
    Ok(())
}

/// Figure 1: multilevel reversible location anonymization.
fn fig1() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 1: multilevel reversible anonymization ===");
    let net = grid_city(5, 5, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    // L1 needs 3 segments, L2 six, L3 nine — like the figure's growth.
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(3))
        .level(LevelRequirement::with_k(6))
        .level(LevelRequirement::with_k(9))
        .build()?;
    let manager = KeyManager::from_seed(3, 2024);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let user = SegmentId(18); // the figure's s18 holds the actual user
    let engine = RgeEngine::new();
    let out = cloak::anonymize(&net, &snapshot, user, &profile, &keys, 1, &engine)?;

    println!("L0 (actual user): {{{user}}}");
    let mut cursor = 0;
    for (i, meta) in out.payload.levels.iter().enumerate() {
        let added: Vec<String> = out.chain[cursor..cursor + meta.count as usize]
            .iter()
            .map(|s| s.to_string())
            .collect();
        cursor += meta.count as usize;
        println!(
            "Key{} expands to L{}: adds {{{}}}",
            i + 1,
            i + 1,
            added.join(", ")
        );
    }

    println!("-- de-anonymization --");
    for level in (0..3).rev() {
        let view = cloak::deanonymize(
            &net,
            &out.payload,
            &manager.keys_down_to(Level(level))?,
            &engine,
        )?;
        let segs: Vec<String> = view.segments.iter().map(|s| s.to_string()).collect();
        println!("reduce to L{level}: {{{}}}", segs.join(", "));
    }
    println!();
    Ok(())
}

/// Figure 2: the RGE transition table.
fn fig2() {
    println!("=== Figure 2: reversible global expansion ===");
    // The paper's state: CloakA = {s8, s9, s11} (rows, by length) and
    // CanA = {s6, s10, s14} (columns, by length); s8 is the last added
    // segment, R_i = 5.
    let rows = vec![SegmentId(9), SegmentId(8), SegmentId(11)];
    let cols = vec![SegmentId(6), SegmentId(14), SegmentId(10)];
    let table = TransitionTable::from_sorted(rows, cols);
    println!("transition table (cell = ((i-1)+(j-1)) mod |CanA|):");
    print!("{table}");
    let r_i = 5u64;
    let pick = (r_i % table.col_count() as u64) as usize;
    println!(
        "R_i = {r_i}  =>  pick p_i = {r_i} mod {} = {pick}",
        table.col_count()
    );
    let row_s8 = 1; // s8's row index in length order
    let j = table.forward_col(row_s8, pick);
    println!(
        "forward:  last added s8 (row {row_s8}) + pick {pick} -> column {} = {}",
        j,
        table.cols()[j]
    );
    let i = table
        .backward_row(j, pick, 0)
        .expect("the paper's example is in range");
    println!(
        "backward: removed {} (column {j}) + pick {pick} -> row {} = {}",
        table.cols()[j],
        i,
        table.rows()[i]
    );
    println!();
}

/// Figure 3: RPLE pre-assigned transition lists.
fn fig3() {
    println!("=== Figure 3: reversible pre-assignment-based local expansion ===");
    let net = grid_city(4, 4, 100.0);
    let t_len = 6;
    let engine = RpleEngine::build(&net, t_len);
    let tables = engine.tables();
    println!(
        "Algorithm 1 pre-assignment over {} segments, T = {t_len}: {} links placed, {} dropped",
        net.segment_count(),
        tables.placed_links(),
        tables.dropped_links()
    );
    let s8 = SegmentId(8);
    print!("{}", tables.render_lists(s8));

    // The figure's walkthrough: from s8, index R_i mod 6 picks the next
    // segment; with the same key the backward list selects s8 again.
    let r_i = 10u64;
    let idx = (r_i % t_len as u64) as usize;
    if let Some(next) = tables.forward(s8, idx) {
        println!(
            "forward:  from {s8}, index {r_i} mod {t_len} = {idx} -> FT[{s8}][{idx}] = {next}"
        );
        let back = tables.backward(next, idx).expect("duality");
        println!("backward: from {next}, same index {idx} -> BT[{next}][{idx}] = {back}");
        assert_eq!(back, s8);
    } else {
        println!("slot {idx} of FT[{s8}] is unassigned; real steps void and redraw");
    }

    // Verify the duality invariant on the whole map.
    assert_eq!(tables.duality_violations(), 0);
    println!("duality invariant FT[s][j] = sp <=> BT[sp][j] = s holds map-wide");
    println!();

    // Use RegionState to show one real reversible step.
    let region = RegionState::from_segments(&net, [s8]);
    let mut stream = DrawStream::new(Key256::from_seed(99), b"fig3");
    use cloak::ReversibleEngine as _;
    if let Ok(acc) = engine.forward_step(
        &net,
        &region,
        s8,
        &mut stream,
        &SpatialTolerance::Unlimited,
        &mut cloak::StepScratch::new(),
    ) {
        println!(
            "one keyed step: {s8} -> {} (round {}, {} voided)",
            acc.segment, acc.draws, acc.voided
        );
    }
}
