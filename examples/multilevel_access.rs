//! Multi-level access control: different requesters, different granularity.
//!
//! An owner cloaks her location once; an emergency service, a friend, an
//! advertising network and a stranger each fetch the keys their trust
//! degree entitles them to and see correspondingly finer or coarser
//! regions — the paper's central access-controlled scenario.
//!
//! Run with: `cargo run --example multilevel_access`

use anonymizer::{AnonymizerConfig, AnonymizerService, Deanonymizer, Engine};
use reversecloak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = roadnet::grid_city(10, 10, 100.0);
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars: 800,
            seed: 3,
            ..Default::default()
        },
    );
    sim.run(10, 5.0);
    let snapshot = OccupancySnapshot::capture(&sim);

    let service = AnonymizerService::new(sim.network().clone(), AnonymizerConfig::default());
    service.update_snapshot(snapshot);

    // The owner's actual location: wherever car 17 currently drives.
    let owner_segment = sim.cars()[17].segment();
    let receipt =
        service.anonymize_owner("car-17", owner_segment, None, &mut rand::thread_rng())?;
    println!(
        "owner at {owner_segment}; published region has {} segments over {} levels",
        receipt.payload.region_size(),
        receipt.payload.levels.len()
    );

    // The owner's personal access-control profile.
    service.register_requester("car-17", "emergency-911", TrustDegree(10), Level(0));
    service.register_requester("car-17", "spouse", TrustDegree(8), Level(1));
    service.register_requester("car-17", "ad-network", TrustDegree(2), Level(2));
    service.register_requester("car-17", "stranger", TrustDegree(0), Level(3));

    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), service.config().engine),
    );

    for requester in ["emergency-911", "spouse", "ad-network", "stranger"] {
        match service.fetch_keys("car-17", requester) {
            Ok(keys) => {
                let view = dean.reduce(&receipt.payload, &keys)?;
                println!(
                    "{requester:>14}: {} key(s) -> level {} region of {} segments{}",
                    keys.len(),
                    view.level,
                    view.segments.len(),
                    if view.level == Level(0) {
                        format!(" (exact: {})", view.anchor)
                    } else {
                        String::new()
                    }
                );
            }
            Err(e) => {
                // No keys: only the full cloaking region is visible.
                let view = dean.reduce(&receipt.payload, &[])?;
                println!(
                    "{requester:>14}: no keys ({e}) -> level {} region of {} segments",
                    view.level,
                    view.segments.len()
                );
            }
        }
    }

    // Sanity: the emergency service recovered the exact segment.
    let keys = service.fetch_keys("car-17", "emergency-911")?;
    let view = dean.reduce(&receipt.payload, &keys)?;
    assert_eq!(view.segments, vec![owner_segment]);
    Ok(())
}
