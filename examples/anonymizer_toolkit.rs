//! Figure 4: the Anonymizer toolkit over the paper's evaluation map.
//!
//! Builds the Atlanta-scale network (6,979 junctions / 9,187 segments),
//! simulates 10,000 Gaussian-placed cars with shortest-path trips, cloaks
//! one car's location at three levels, and renders the colored multi-level
//! regions as SVG plus an ASCII zoom — the headless equivalent of the
//! paper's GUI screenshot.
//!
//! Run with: `cargo run --release --example anonymizer_toolkit`
//! Writes `target/anonymizer_toolkit.svg`.

use anonymizer::{
    render_regions, render_svg, AnonymizerConfig, AnonymizerService, Deanonymizer, Engine,
};
use reversecloak::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's map, structurally.
    let t0 = Instant::now();
    let net = roadnet::atlanta_like(42);
    println!(
        "map: {} junctions, {} segments ({} ms)",
        net.junction_count(),
        net.segment_count(),
        t0.elapsed().as_millis()
    );
    println!("{}", roadnet::NetworkStats::compute(&net));

    // 10,000 cars, Gaussian along the roads, shortest-path routing.
    let t0 = Instant::now();
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars: 10_000,
            seed: 7,
            ..Default::default()
        },
    );
    sim.run(6, 10.0); // a minute of traffic
    let snapshot = OccupancySnapshot::capture(&sim);
    println!(
        "traffic: {} cars placed and driven for {:.0} s ({} ms)",
        snapshot.total_users(),
        sim.clock(),
        t0.elapsed().as_millis()
    );

    // The owner is car 0; the Anonymizer service cloaks its segment.
    let user_segment = sim.cars()[0].segment();
    let service = AnonymizerService::new(sim.network().clone(), AnonymizerConfig::default());
    service.update_snapshot(snapshot);
    let mut rng = rand::thread_rng();
    let t0 = Instant::now();
    let receipt = service.anonymize_owner("car-0", user_segment, None, &mut rng)?;
    println!(
        "anonymized {user_segment} into {} segments in {} attempt(s) ({} ms)",
        receipt.payload.region_size(),
        receipt.attempts,
        t0.elapsed().as_millis()
    );

    // Colored multi-level regions, like the GUI map.
    let regions = AnonymizerService::level_regions(&receipt.outcome);
    let svg = render_svg(service.network(), &regions, 1200);
    let out_path = std::path::Path::new("target").join("anonymizer_toolkit.svg");
    std::fs::create_dir_all("target")?;
    std::fs::write(&out_path, &svg)?;
    println!("wrote {} ({} bytes)", out_path.display(), svg.len());

    // ASCII zoom into the cloaked neighborhood.
    let zoom = zoom_network(service.network(), &receipt.payload.segments, 3);
    println!("\ncloaked neighborhood (ASCII zoom):");
    println!(
        "{}",
        render_regions(&zoom.0, &remap(&regions, &zoom.1), 100, 34)
    );
    println!("{}", anonymizer::legend(receipt.payload.levels.len()));

    // The De-anonymizer side: a fully-trusted requester peels to L0.
    service.register_requester("car-0", "emergency", TrustDegree(10), Level(0));
    let keys = service.fetch_keys("car-0", "emergency")?;
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), service.config().engine),
    );
    let t0 = Instant::now();
    let views = dean.peel_progressively(&receipt.payload, &keys)?;
    for view in &views {
        println!(
            "de-anonymizer at level {}: {} segments",
            view.level,
            view.segments.len()
        );
    }
    println!("full peel took {} ms", t0.elapsed().as_millis());
    assert_eq!(views.last().unwrap().segments, vec![user_segment]);
    println!("exact segment recovered: {user_segment}");
    Ok(())
}

/// Extracts the sub-network within `hops` of the cloaked region so the
/// ASCII raster shows detail instead of the whole metro area. Returns the
/// sub-network and the old->new segment id mapping.
fn zoom_network(
    net: &RoadNetwork,
    region: &[SegmentId],
    hops: usize,
) -> (RoadNetwork, std::collections::HashMap<SegmentId, SegmentId>) {
    use std::collections::HashMap;
    let mut keep: Vec<SegmentId> = Vec::new();
    for &s in region {
        for n in roadnet::segments_within_hops(net, s, hops) {
            if !keep.contains(&n) {
                keep.push(n);
            }
        }
    }
    let mut b = roadnet::RoadNetworkBuilder::new();
    let mut jmap: HashMap<JunctionId, JunctionId> = HashMap::new();
    let mut smap: HashMap<SegmentId, SegmentId> = HashMap::new();
    for &s in &keep {
        let seg = net.segment(s);
        let (a, bq) = seg.endpoints();
        let na = *jmap
            .entry(a)
            .or_insert_with(|| b.add_junction(net.junction(a).position()));
        let nb = *jmap
            .entry(bq)
            .or_insert_with(|| b.add_junction(net.junction(bq).position()));
        let ns = b
            .add_segment_with_length(na, nb, seg.length())
            .expect("sub-network edges are valid");
        smap.insert(s, ns);
    }
    (b.build().expect("non-empty zoom"), smap)
}

/// Remaps level regions into the zoomed network's id space.
fn remap(
    regions: &[(Level, Vec<SegmentId>)],
    smap: &std::collections::HashMap<SegmentId, SegmentId>,
) -> Vec<(Level, Vec<SegmentId>)> {
    regions
        .iter()
        .map(|(l, segs)| {
            (
                *l,
                segs.iter().filter_map(|s| smap.get(s).copied()).collect(),
            )
        })
        .collect()
}
