//! Quickstart: cloak a user's road segment at three privacy levels, then
//! selectively de-anonymize with the per-level keys.
//!
//! Run with: `cargo run --example quickstart`

use reversecloak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 7x7 grid city with one simulated user per segment.
    let net = roadnet::grid_city(7, 7, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    println!(
        "network: {} junctions, {} segments",
        net.junction_count(),
        net.segment_count()
    );

    // The owner's profile: three levels with growing k.
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(4))
        .level(LevelRequirement::with_k(9))
        .level(LevelRequirement::with_k(16))
        .build()?;

    // Auto-generated keys, one per level.
    let manager = KeyManager::generate(profile.level_count(), &mut rand::thread_rng());
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();

    // Anonymize segment s40 with Reversible Global Expansion.
    let user = SegmentId(40);
    let engine = RgeEngine::new();
    let out = cloak::anonymize(
        &net,
        &snapshot,
        user,
        &profile,
        &keys,
        rand::random(),
        &engine,
    )?;
    println!(
        "cloaked {user} into {} segments across {} levels",
        out.payload.region_size(),
        out.payload.levels.len()
    );
    for stats in &out.per_level {
        println!(
            "  level {}: +{} segments ({} draws, {} voided)",
            stats.level, stats.added, stats.draws, stats.voided
        );
    }

    // Requesters with different keys see different granularity.
    for target in (0..=profile.level_count()).rev() {
        let level = Level(target as u8);
        let peel_keys = manager.keys_down_to(level)?;
        let view = cloak::deanonymize(&net, &out.payload, &peel_keys, &engine)?;
        println!(
            "with {} key(s): level {} region of {} segments",
            peel_keys.len(),
            view.level,
            view.segments.len()
        );
        if view.level == Level(0) {
            assert_eq!(view.segments, vec![user]);
            println!("  exact segment recovered: {}", view.anchor);
        }
    }

    Ok(())
}
