//! Property-based tests of the core protocol invariants.
//!
//! * Round-trip: `deanonymize(anonymize(x)) == x` for random maps,
//!   profiles, keys, seeds and both engines.
//! * Level monotonicity: peeled views nest.
//! * k-anonymity and l-diversity hold at the top level.
//! * Wrong keys never silently recover the user's segment.

use proptest::prelude::*;
use reversecloak::prelude::*;

/// A small connected world with one user per segment.
fn world(rows: usize, cols: usize) -> (RoadNetwork, OccupancySnapshot) {
    let net = roadnet::grid_city(rows, cols, 100.0);
    let snap = OccupancySnapshot::uniform(net.segment_count(), 1);
    (net, snap)
}

fn profile_from(ks: &[u32]) -> PrivacyProfile {
    let mut b = PrivacyProfile::builder();
    let mut prev = 0;
    for &k in ks {
        let k = k.max(prev); // keep non-decreasing
        prev = k;
        b = b.level(LevelRequirement::with_k(k));
    }
    b.build().expect("generated profiles are valid")
}

/// Runs anonymize with retries; skips the case if the walk dead-ends
/// (possible for RPLE on unlucky seeds — rejected, not failed).
fn try_anonymize(
    net: &RoadNetwork,
    snap: &OccupancySnapshot,
    user: SegmentId,
    profile: &PrivacyProfile,
    keys: &[Key256],
    nonce: u64,
    engine: &dyn ReversibleEngine,
) -> Option<cloak::AnonymizationOutcome> {
    cloak::anonymize_with_retry(net, snap, user, profile, keys, nonce, engine, 8)
        .ok()
        .map(|(o, _)| o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rge_roundtrip_recovers_exact_segment(
        seg in 0u32..84,
        key_seed in any::<u64>(),
        nonce in any::<u64>(),
        k1 in 2u32..8,
        k2 in 8u32..20,
    ) {
        let (net, snap) = world(7, 7);
        let profile = profile_from(&[k1, k2]);
        let manager = KeyManager::from_seed(2, key_seed);
        let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
        let engine = RgeEngine::new();
        let user = SegmentId(seg);
        let out = try_anonymize(&net, &snap, user, &profile, &keys, nonce, &engine)
            .expect("RGE never dead-ends on an open grid");
        // Wire round-trip.
        let payload = cloak::CloakPayload::decode(&out.payload.encode()).unwrap();
        let view = cloak::deanonymize(&net, &payload, &manager.keys_down_to(Level(0)).unwrap(), &engine).unwrap();
        prop_assert_eq!(view.segments, vec![user]);
        prop_assert_eq!(view.anchor, user);
    }

    #[test]
    fn rple_roundtrip_recovers_exact_segment(
        seg in 0u32..84,
        key_seed in any::<u64>(),
        nonce in any::<u64>(),
        t_len in 6usize..12,
    ) {
        let (net, snap) = world(7, 7);
        let profile = profile_from(&[4, 10]);
        let manager = KeyManager::from_seed(2, key_seed);
        let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
        let engine = RpleEngine::build(&net, t_len);
        let user = SegmentId(seg);
        // RPLE may dead-end even with retries; such cases are skipped
        // (they are failures of *availability*, measured elsewhere, not of
        // reversibility).
        if let Some(out) = try_anonymize(&net, &snap, user, &profile, &keys, nonce, &engine) {
            let view = cloak::deanonymize(&net, &out.payload, &manager.keys_down_to(Level(0)).unwrap(), &engine).unwrap();
            prop_assert_eq!(view.segments, vec![user]);
        }
    }

    #[test]
    fn peeled_views_nest_and_satisfy_k(
        seg in 0u32..60,
        key_seed in any::<u64>(),
        nonce in any::<u64>(),
        base_k in 2u32..6,
        levels in 2usize..5,
    ) {
        let (net, snap) = world(8, 8);
        let ks: Vec<u32> = (0..levels).map(|i| base_k << i).collect();
        let profile = profile_from(&ks);
        let manager = KeyManager::from_seed(levels, key_seed);
        let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
        let engine = RgeEngine::new();
        let user = SegmentId(seg);
        let out = try_anonymize(&net, &snap, user, &profile, &keys, nonce, &engine).unwrap();

        // Top-level k and l hold (1 user per segment: users == segments).
        let top = profile.top_requirement();
        prop_assert!(out.payload.region_size() as u64 >= top.k as u64);
        prop_assert!(out.payload.region_size() >= top.l as usize);

        // Views nest as keys accumulate.
        let all_keys = manager.keys_down_to(Level(0)).unwrap();
        let mut prev: Option<Vec<SegmentId>> = None;
        for take in 0..=all_keys.len() {
            let view = cloak::deanonymize(&net, &out.payload, &all_keys[..take], &engine).unwrap();
            prop_assert!(net.segments_connected(&view.segments));
            if let Some(bigger) = prev {
                for s in &view.segments {
                    prop_assert!(bigger.contains(s), "views must nest");
                }
                prop_assert!(view.segments.len() <= bigger.len());
            }
            prev = Some(view.segments);
        }
        prop_assert_eq!(prev.unwrap(), vec![user]);
    }

    #[test]
    fn wrong_key_never_silently_recovers_the_user(
        seg in 0u32..84,
        key_seed in 0u64..1_000,
        wrong_seed in 1_000u64..2_000,
        nonce in any::<u64>(),
    ) {
        let (net, snap) = world(7, 7);
        let profile = profile_from(&[6]);
        let manager = KeyManager::from_seed(1, key_seed);
        let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
        let engine = RgeEngine::new();
        let user = SegmentId(seg);
        let out = try_anonymize(&net, &snap, user, &profile, &keys, nonce, &engine).unwrap();
        let wrong = Key256::from_seed(wrong_seed);
        match cloak::deanonymize(&net, &out.payload, &[(Level(1), wrong)], &engine) {
            // The overwhelmingly common case: the bootstrap tag rejects.
            Err(_) => {}
            // A false tag match is cryptographically negligible with a
            // real PRF; with the simulation PRF it must still never
            // produce the true segment for a wrong key.
            Ok(view) => prop_assert_ne!(view.segments, vec![user]),
        }
    }

    #[test]
    fn payload_decode_never_panics_on_mutations(
        seg in 0u32..48,
        key_seed in any::<u64>(),
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let (net, snap) = world(7, 7);
        let profile = profile_from(&[5]);
        let manager = KeyManager::from_seed(1, key_seed);
        let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
        let engine = RgeEngine::new();
        let out = try_anonymize(&net, &snap, SegmentId(seg), &profile, &keys, 7, &engine).unwrap();
        let mut bytes = out.payload.encode().to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // Must not panic; may decode to something (further validated by
        // deanonymize) or fail cleanly.
        if let Ok(p) = cloak::CloakPayload::decode(&bytes) {
            let _ = cloak::deanonymize(
                &net,
                &p,
                &manager.keys_down_to(Level(0)).unwrap(),
                &engine,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn preassignment_duality_on_random_irregular_maps(
        seed in any::<u64>(),
        t_len in 2usize..10,
        junctions in 30usize..120,
    ) {
        let net = roadnet::irregular_city(&roadnet::IrregularConfig {
            junctions,
            segments: junctions + junctions / 3,
            seed,
            ..Default::default()
        });
        let tables = cloak::PreassignedTables::build(&net, t_len);
        prop_assert_eq!(tables.duality_violations(), 0);
        // Every placed link is a real adjacency.
        for s in net.segment_ids() {
            for cell in tables.forward_list(s).iter().flatten() {
                prop_assert!(net.segments_adjacent(s, *cell));
            }
        }
    }

    #[test]
    fn snapshot_and_region_accounting_agree(
        seed in any::<u64>(),
        cars in 50usize..400,
    ) {
        let net = roadnet::grid_city(6, 6, 100.0);
        let mut sim = Simulation::new(net, SimConfig { cars, seed, ..Default::default() });
        sim.run(5, 7.0);
        let snap = OccupancySnapshot::capture(&sim);
        prop_assert_eq!(snap.total_users(), cars as u64);
        let all: u64 = snap.users_in(sim.network().segment_ids());
        prop_assert_eq!(all, cars as u64);
    }
}
