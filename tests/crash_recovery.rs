//! Crash/restart harness: kill the anonymizer mid-run and recover from
//! the durable chain journal.
//!
//! The contract under test (PR 8's tentpole): every owner's ratchet
//! advance is journaled to the [`keystream::FileStore`] write-ahead log
//! *before* its receipt is issued, so a crash at any point — including
//! the injected worst case, between ratchet-advance and receipt-issue —
//! loses no epoch. Re-opening the store must resume every chain at its
//! journaled epoch: monotone epochs (no reuse, no holes), captured
//! grants still opening their own epoch's receipts, and every per-tick
//! pipeline invariant (reversibility, issue-time k-anonymity, grant
//! preservation) holding after recovery exactly as before, under every
//! fault plan the injector can produce.

use anonymizer::{
    AnonymizerConfig, AnonymizerService, ContinuousPipeline, Deanonymizer, Engine, FaultPlan,
    FaultPolicy, PipelineConfig,
};
use keystream::{ChainStore, FileStore, Level, TrustDegree};
use mobisim::{OccupancySnapshot, SimConfig};
use roadnet::{grid_city, SegmentId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn journal_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rcloak-crash-{}-{name}.rcs", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The journaled `(owner → epoch)` map, read through a fresh store
/// handle the way a restarted process would.
fn journaled_epochs(path: &PathBuf) -> HashMap<String, u64> {
    FileStore::open(path)
        .expect("journal re-opens")
        .load()
        .expect("journal loads")
        .into_iter()
        .map(|(owner, chain)| (owner, chain.epoch()))
        .collect()
}

fn pipeline_over(
    store: Arc<dyn ChainStore>,
    fault: Option<FaultPlan>,
    policy: FaultPolicy,
) -> ContinuousPipeline {
    ContinuousPipeline::with_store(
        grid_city(8, 8, 100.0),
        SimConfig {
            cars: 250,
            seed: 11,
            ..Default::default()
        },
        AnonymizerConfig::default(),
        PipelineConfig {
            tracked_owners: 5,
            lbs_probes: 0,
            seed: 0x0c4a_59e1,
            fault,
            fault_policy: policy,
            ..Default::default()
        },
        store,
    )
    .expect("store recovers")
}

/// Kill the pipeline by injected crash mid-run, re-open the journal the
/// way a restarted process would, and continue: every chain resumes at
/// its journaled epoch — the crash-window advances included — and every
/// per-tick invariant still verifies.
#[test]
fn killed_pipeline_recovers_epochs_and_invariants_from_the_journal() {
    let path = journal_path("kill-recover");

    let store = Arc::new(FileStore::open(&path).unwrap());
    let mut pipeline = pipeline_over(
        store,
        Some(FaultPlan {
            crash_at_tick: Some(3),
            ..Default::default()
        }),
        FaultPolicy::default(),
    );
    assert!(pipeline.tick().is_ok());
    assert!(pipeline.tick().is_ok());
    let err = pipeline.tick().unwrap_err();
    assert!(err.message.contains("injected crash"), "{err}");
    drop(pipeline); // the process dies; only the journal survives

    // The crashed tick's advances were journaled BEFORE the crash point:
    // 3 epochs per owner, though only 2 ticks of receipts were issued.
    let before = journaled_epochs(&path);
    assert_eq!(before.len(), 5, "all tracked owners journaled");
    for (owner, epoch) in &before {
        assert_eq!(*epoch, 3, "{owner}: crash-window advance journaled");
    }

    // Restart over the surviving journal and keep going, fault-free.
    let store = Arc::new(FileStore::open(&path).unwrap());
    let mut pipeline = pipeline_over(store, None, FaultPolicy::default());
    let reports = pipeline.run(3).expect("post-recovery invariants hold");
    assert!(reports.iter().all(|r| r.issued == 5 && r.verified == 5));

    // Epoch monotonicity across the restart: each owner continued from
    // its journaled epoch — the unissued crash-window epoch is never
    // reused for a new receipt.
    let service = pipeline.service();
    for (owner, epoch_before) in &before {
        assert_eq!(
            service.owner_epoch(owner),
            Some(epoch_before + 3),
            "{owner}: resumed past the journaled epoch"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// The restart semantics satellite, at the service level: a grant
/// captured before the crash still deanonymizes *its* epoch's receipt
/// after `recover()`, and post-recovery re-anonymization continues the
/// ratchet — fresh epoch, no reuse.
#[test]
fn captured_grant_survives_recovery_and_ratchet_continues() {
    let path = journal_path("grant-survives");
    let net = grid_city(8, 8, 100.0);
    let cfg = AnonymizerConfig::default();

    let service = AnonymizerService::with_store(
        net.clone(),
        cfg.clone(),
        Arc::new(FileStore::open(&path).unwrap()),
    )
    .unwrap();
    service.update_snapshot(OccupancySnapshot::uniform(
        service.network().segment_count(),
        2,
    ));
    let receipt = service
        .anonymize_seeded("alice", SegmentId(17), None, 7)
        .unwrap();
    assert_eq!(receipt.payload.epoch, 1);
    assert!(service.register_requester("alice", "police", TrustDegree(10), Level(0)));
    // The requester walks away holding the keys — a captured grant.
    let captured = service.fetch_keys("alice", "police").unwrap();
    drop(service); // crash: all in-memory state gone

    let recovered =
        AnonymizerService::recover(net, cfg, Arc::new(FileStore::open(&path).unwrap())).unwrap();
    recovered.update_snapshot(OccupancySnapshot::uniform(
        recovered.network().segment_count(),
        2,
    ));

    // The captured grant still opens its own epoch's receipt exactly.
    let dean = Deanonymizer::new(
        recovered.network_arc(),
        Engine::build(recovered.network(), recovered.config().engine),
    );
    let view = dean.reduce(&receipt.payload, &captured).unwrap();
    assert_eq!(view.segments, vec![SegmentId(17)]);

    // And the recovered chain continues forward — epoch 2, never 1 again.
    assert_eq!(recovered.owner_epoch("alice"), Some(1));
    let next = recovered
        .anonymize_seeded("alice", SegmentId(40), None, 8)
        .unwrap();
    assert_eq!(next.payload.epoch, 2, "ratchet resumed, no epoch reuse");
    assert_ne!(next.payload.nonce, receipt.payload.nonce);
    let _ = std::fs::remove_file(&path);
}

/// Kill-and-recover under *every* fault plan shape the injector offers:
/// flaky journal writes absorbed by retries, failing snapshot captures,
/// injected cloak failures, compaction refusals — each combined with a
/// mid-run crash. Whatever the plan did before the kill, recovery must
/// resume every owner strictly forward from its journaled epoch and the
/// post-recovery run must verify every receipt.
#[test]
fn every_fault_plan_preserves_recovery_invariants() {
    let plans = [
        FaultPlan {
            seed: 1,
            journal_write_fail: 0.35,
            crash_at_tick: Some(4),
            ..Default::default()
        },
        FaultPlan {
            seed: 2,
            snapshot_capture_fail: 0.5,
            crash_at_tick: Some(3),
            ..Default::default()
        },
        FaultPlan {
            seed: 3,
            cloak_fail: 0.4,
            compact_fail: 0.5,
            crash_at_tick: Some(4),
            ..Default::default()
        },
        FaultPlan {
            seed: 4,
            journal_write_fail: 0.25,
            snapshot_capture_fail: 0.3,
            cloak_fail: 0.2,
            crash_at_tick: Some(3),
            ..Default::default()
        },
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        let path = journal_path(&format!("plan-{i}"));
        let crash_tick = plan.crash_at_tick.unwrap();
        let store = Arc::new(FileStore::open(&path).unwrap());
        let mut pipeline = pipeline_over(
            store,
            Some(plan.clone()),
            FaultPolicy {
                journal_retries: 6,
                ..Default::default()
            },
        );
        for tick in 1..=crash_tick {
            let result = pipeline.tick();
            if tick == crash_tick {
                let err = result.expect_err("crash fires on schedule");
                assert!(err.message.contains("injected crash"), "plan {i}: {err}");
            } else {
                let report = result.unwrap_or_else(|e| panic!("plan {i}: {e}"));
                assert_eq!(report.verified, report.issued, "plan {i}");
            }
        }
        drop(pipeline);

        let before = journaled_epochs(&path);
        assert!(!before.is_empty(), "plan {i}: advances were journaled");

        let store = Arc::new(FileStore::open(&path).unwrap());
        let mut pipeline = pipeline_over(store, None, FaultPolicy::default());
        let reports = pipeline
            .run(3)
            .unwrap_or_else(|e| panic!("plan {i}: post-recovery: {e}"));
        assert!(
            reports
                .iter()
                .all(|r| r.verified == r.issued && r.issued > 0),
            "plan {i}: post-recovery receipts verify"
        );
        let service = pipeline.service();
        for (owner, epoch_before) in &before {
            let now = service
                .owner_epoch(owner)
                .unwrap_or_else(|| panic!("plan {i}: {owner} lost its chain across recovery"));
            assert_eq!(
                now,
                epoch_before + 3,
                "plan {i}: {owner} advanced exactly once per post-recovery tick"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// A torn tail from a mid-write kill must not poison recovery: truncate
/// the live journal at an arbitrary byte, re-open, and the pipeline
/// resumes from the longest valid prefix as if the torn record had
/// never been appended.
#[test]
fn torn_journal_tail_recovers_to_the_valid_prefix() {
    let path = journal_path("torn-tail");
    {
        let store = Arc::new(FileStore::open(&path).unwrap());
        let mut pipeline = pipeline_over(store, None, FaultPolicy::default());
        pipeline.run(2).unwrap();
    }
    // Tear mid-record: chop 5 bytes off the end of the log.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

    let before = journaled_epochs(&path);
    // The torn final record is gone; every surviving owner is at a
    // coherent epoch (1 or 2), never a garbage value.
    for (owner, epoch) in &before {
        assert!((1..=2).contains(epoch), "{owner} at epoch {epoch}");
    }
    // Recovery over the torn store still runs and verifies.
    let store = Arc::new(FileStore::open(&path).unwrap());
    let mut pipeline = pipeline_over(store, None, FaultPolicy::default());
    let reports = pipeline.run(2).expect("recovered from torn tail");
    assert!(reports.iter().all(|r| r.verified == r.issued));
    let _ = std::fs::remove_file(&path);
}
