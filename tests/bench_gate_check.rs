//! Behavioral tests for `tools/bench_gate.sh`: the CI tick-latency gate
//! must cover all six pipeline cells — raw, verified, and **attacked**,
//! for both engines — fail on a regression in any one of them, and
//! refuse to pass vacuously when nothing is comparable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CELLS: [&str; 6] = [
    "rge_raw",
    "rge_verified",
    "rge_attacked",
    "rple_raw",
    "rple_verified",
    "rple_attacked",
];

fn script() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tools/bench_gate.sh")
}

/// Writes a BENCH_pipeline.json-shaped file: one flat
/// `"cell": { "mean_tick_ms": N, ... }` line per cell, the format the
/// gate's grep relies on.
fn write_bench_json(path: &Path, cells: &[(&str, f64)]) {
    let body = cells
        .iter()
        .map(|(cell, ms)| {
            format!("  \"{cell}\": {{ \"mean_tick_ms\": {ms:.4}, \"ticks_per_sec\": 1.0 }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n")).unwrap();
}

fn run_gate(name: &str, committed: &[(&str, f64)], fresh: &[(&str, f64)]) -> Output {
    let dir = std::env::temp_dir().join(format!("bench-gate-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let committed_path = dir.join("committed.json");
    let fresh_path = dir.join("fresh.json");
    write_bench_json(&committed_path, committed);
    write_bench_json(&fresh_path, fresh);
    let output = Command::new("bash")
        .arg(script())
        .arg(&committed_path)
        .arg(&fresh_path)
        .output()
        .expect("bench_gate.sh runs");
    std::fs::remove_dir_all(&dir).ok();
    output
}

#[test]
fn gate_checks_every_cell_including_attacked() {
    let cells: Vec<(&str, f64)> = CELLS.iter().map(|&c| (c, 2.0)).collect();
    let output = run_gate("all-ok", &cells, &cells);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "identical points must pass: {stdout}"
    );
    for cell in CELLS {
        assert!(
            stdout.contains(&format!("gate: {cell} ok")),
            "cell {cell} must be gated, got:\n{stdout}"
        );
    }
}

#[test]
fn gate_fails_on_attacked_cell_regression() {
    let committed: Vec<(&str, f64)> = CELLS.iter().map(|&c| (c, 2.0)).collect();
    // Only the attacked cell regresses (2× the committed point, far
    // beyond the default 25% tolerance); every raw/verified cell is
    // unchanged.
    let fresh: Vec<(&str, f64)> = CELLS
        .iter()
        .map(|&c| (c, if c == "rge_attacked" { 4.0 } else { 2.0 }))
        .collect();
    let output = run_gate("attacked-regressed", &committed, &fresh);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(output.status.code(), Some(1), "regression must fail");
    assert!(
        stdout.contains("gate: rge_attacked REGRESSED"),
        "the attacked cell must be named:\n{stdout}"
    );
}

#[test]
fn gate_tolerates_noise_within_threshold() {
    let committed: Vec<(&str, f64)> = CELLS.iter().map(|&c| (c, 2.0)).collect();
    let fresh: Vec<(&str, f64)> = CELLS.iter().map(|&c| (c, 2.4)).collect();
    let output = run_gate("noise", &committed, &fresh);
    assert!(
        output.status.success(),
        "+20% sits inside the default 25% tolerance"
    );
}

#[test]
fn gate_refuses_to_pass_vacuously() {
    let committed: Vec<(&str, f64)> = CELLS.iter().map(|&c| (c, 2.0)).collect();
    let output = run_gate("vacuous", &committed, &[("unrelated_cell", 1.0)]);
    assert_eq!(
        output.status.code(),
        Some(2),
        "no comparable cells must exit 2"
    );
    assert!(String::from_utf8_lossy(&output.stderr).contains("refusing to pass vacuously"));
}
