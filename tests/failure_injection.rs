//! Failure injection: the system must fail loudly and cleanly, never
//! silently mis-anonymize or mis-recover.

use anonymizer::{AnonymizerConfig, AnonymizerService, Deanonymizer, Engine, EngineChoice};
use reversecloak::prelude::*;
use roadnet::RoadNetworkBuilder;

/// Two disconnected islands of roads.
fn disconnected_net() -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    let mut last = None;
    // Island A: a chain of 4 junctions.
    for i in 0..4 {
        let j = b.add_junction(roadnet::Point::new(i as f64 * 100.0, 0.0));
        if let Some(p) = last {
            b.add_segment(p, j).unwrap();
        }
        last = Some(j);
    }
    // Island B: far away.
    let mut lastb = None;
    for i in 0..4 {
        let j = b.add_junction(roadnet::Point::new(i as f64 * 100.0, 10_000.0));
        if let Some(p) = lastb {
            b.add_segment(p, j).unwrap();
        }
        lastb = Some(j);
    }
    b.build().unwrap()
}

#[test]
fn frontier_exhaustion_on_disconnected_island() {
    let net = disconnected_net();
    // Only 3 users reachable on the island but k = 50.
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(50).l(1))
        .build()
        .unwrap();
    let keys = vec![Key256::from_seed(1)];
    let err = cloak::anonymize(
        &net,
        &snapshot,
        SegmentId(0),
        &profile,
        &keys,
        1,
        &RgeEngine::new(),
    )
    .unwrap_err();
    assert!(
        matches!(err, CloakError::CloakingFailed { .. }),
        "got {err}"
    );
}

#[test]
fn zero_user_map_cannot_reach_k() {
    let net = roadnet::grid_city(4, 4, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 0);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(2).l(1))
        .build()
        .unwrap();
    let keys = vec![Key256::from_seed(1)];
    let err = cloak::anonymize(
        &net,
        &snapshot,
        SegmentId(0),
        &profile,
        &keys,
        1,
        &RgeEngine::new(),
    )
    .unwrap_err();
    assert!(matches!(err, CloakError::CloakingFailed { .. }));
}

#[test]
fn impossible_tolerance_fails_not_hangs() {
    let net = roadnet::grid_city(6, 6, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(20).tolerance(SpatialTolerance::TotalLength(300.0)))
        .build()
        .unwrap();
    let keys = vec![Key256::from_seed(2)];
    for engine in [
        Box::new(RgeEngine::new()) as Box<dyn ReversibleEngine>,
        Box::new(RpleEngine::build(&net, 8)),
    ] {
        let start = std::time::Instant::now();
        let result = cloak::anonymize_with_retry(
            &net,
            &snapshot,
            SegmentId(0),
            &profile,
            &keys,
            1,
            engine.as_ref(),
            4,
        );
        assert!(result.is_err(), "{}", engine.name());
        assert!(
            start.elapsed().as_secs() < 30,
            "{} took too long to fail",
            engine.name()
        );
    }
}

#[test]
fn truncated_and_corrupted_payloads_rejected() {
    let net = roadnet::grid_city(6, 6, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(6))
        .build()
        .unwrap();
    let manager = KeyManager::from_seed(1, 3);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let engine = RgeEngine::new();
    let out =
        cloak::anonymize(&net, &snapshot, SegmentId(10), &profile, &keys, 1, &engine).unwrap();
    let bytes = out.payload.encode();

    // Every strict prefix fails decode.
    for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
        assert!(cloak::CloakPayload::decode(&bytes[..cut]).is_err());
    }

    // Payload referencing segments outside the map is rejected at
    // de-anonymization time.
    let mut p = out.payload.clone();
    p.segments.push(SegmentId(9_999));
    let err = cloak::deanonymize(&net, &p, &[], &engine).unwrap_err();
    assert!(matches!(err, DeanonError::MalformedPayload(_)));
}

#[test]
fn swapped_level_keys_are_rejected() {
    let net = roadnet::grid_city(7, 7, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(4))
        .level(LevelRequirement::with_k(9))
        .build()
        .unwrap();
    let manager = KeyManager::from_seed(2, 5);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let engine = RgeEngine::new();
    let out =
        cloak::anonymize(&net, &snapshot, SegmentId(20), &profile, &keys, 1, &engine).unwrap();
    // Keys supplied in the wrong order (bottom-up instead of top-down).
    let k1 = manager.key_for(Level(1)).unwrap();
    let k2 = manager.key_for(Level(2)).unwrap();
    let err = cloak::deanonymize(
        &net,
        &out.payload,
        &[(Level(1), k1), (Level(2), k2)],
        &engine,
    )
    .unwrap_err();
    assert!(matches!(err, DeanonError::NonContiguousKeys { .. }));
    // Right levels, swapped key material.
    let err = cloak::deanonymize(
        &net,
        &out.payload,
        &[(Level(2), k1), (Level(1), k2)],
        &engine,
    )
    .unwrap_err();
    assert!(matches!(err, DeanonError::WrongKey(_)), "{err}");
}

#[test]
fn requester_without_entitlement_gets_nothing() {
    let net = roadnet::grid_city(7, 7, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let service = AnonymizerService::new(net, AnonymizerConfig::default());
    service.update_snapshot(snapshot);
    let mut rng = rand::thread_rng();
    service
        .anonymize_owner("alice", SegmentId(10), None, &mut rng)
        .unwrap();
    // Nobody registered: all fetches fail.
    assert!(service.fetch_keys("alice", "anyone").is_err());
    // Registered but trust floor at the top level: still nothing.
    service.register_requester("alice", "lbs", TrustDegree(1), Level(3));
    assert!(service.fetch_keys("alice", "lbs").is_err());
}

#[test]
fn engine_mismatch_between_sides_is_detected() {
    let net = roadnet::grid_city(7, 7, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let service = AnonymizerService::new(
        net,
        AnonymizerConfig {
            engine: EngineChoice::Rge,
            ..Default::default()
        },
    );
    service.update_snapshot(snapshot);
    let mut rng = rand::thread_rng();
    let receipt = service
        .anonymize_owner("alice", SegmentId(10), None, &mut rng)
        .unwrap();
    // The requester mistakenly runs RPLE.
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), EngineChoice::Rple { t_len: 8 }),
    );
    let err = dean.reduce(&receipt.payload, &[]).unwrap_err();
    assert!(matches!(err, DeanonError::MalformedPayload(_)));
}

#[test]
fn deanonymize_rejects_key_below_level_zero() {
    let net = roadnet::grid_city(6, 6, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(4))
        .build()
        .unwrap();
    let manager = KeyManager::from_seed(1, 9);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let engine = RgeEngine::new();
    let out = cloak::anonymize(&net, &snapshot, SegmentId(5), &profile, &keys, 1, &engine).unwrap();
    // Peel L1 then try to peel "L0" with another key.
    let k1 = manager.key_for(Level(1)).unwrap();
    let err = cloak::deanonymize(
        &net,
        &out.payload,
        &[(Level(1), k1), (Level(0), k1)],
        &engine,
    )
    .unwrap_err();
    assert!(matches!(err, DeanonError::NonContiguousKeys { .. }));
}
