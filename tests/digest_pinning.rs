//! Receipt-stream digest pinning: the continuous pipeline's per-tick
//! digests for a fixed configuration, captured **before** the
//! allocation-free hot-path refactor (CSR adjacency, engine scratch
//! buffers, pooled LBS search) from `rcloak simulate --ticks 6 --cars
//! 300 --grid 8x8 --owners 8 --cadence 2 [--engine rple]` at the
//! default seed.
//!
//! [`TickReport::digest`] folds every issued `(owner, payload.encode())`
//! pair in order, so equality here proves the refactor changed **no
//! byte of any receipt**: same draws, same regions, same metadata — a
//! pure mechanical-sympathy change. If an intentional protocol change
//! ever breaks these constants, re-pin them from a trusted build and
//! say so loudly in the commit.

use anonymizer::{AnonymizerConfig, ContinuousPipeline, EngineChoice, PipelineConfig};
use mobisim::SimConfig;
use roadnet::grid_city;

/// The exact configuration `rcloak simulate` builds for
/// `--ticks 6 --cars 300 --grid 8x8 --owners 8 --cadence 2 --seed 42`.
fn pipeline(engine: EngineChoice) -> ContinuousPipeline {
    let seed = 42u64;
    ContinuousPipeline::new(
        grid_city(8, 8, 100.0),
        SimConfig {
            cars: 300,
            seed,
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
        PipelineConfig {
            dt: 10.0,
            snapshot_cadence: 2,
            tracked_owners: 8,
            seed: seed ^ 0x51e_71c4,
            verify: true,
            lbs_probes: 4,
            ..Default::default()
        },
    )
}

fn digests(engine: EngineChoice) -> Vec<u64> {
    let mut p = pipeline(engine);
    p.run(6)
        .expect("pinned configuration verifies cleanly")
        .iter()
        .map(|r| r.digest)
        .collect()
}

#[test]
fn rge_receipt_stream_is_bit_identical_to_pre_refactor_baseline() {
    assert_eq!(
        digests(EngineChoice::Rge),
        vec![
            0x08ab_1b44_f5d6_ed3e,
            0x58e5_5243_4297_594c,
            0x5acc_24a8_2142_4846,
            0xc83e_bd04_76d1_16b2,
            0xa958_10d0_3e19_9f85,
            0xdce6_0903_cc98_dfe4,
        ]
    );
}

#[test]
fn rple_receipt_stream_is_bit_identical_to_pre_refactor_baseline() {
    assert_eq!(
        digests(EngineChoice::Rple { t_len: 12 }),
        vec![
            0x5527_b17e_13ee_f68c,
            0xf95f_a4c2_1ba5_24a6,
            0x3a33_9e50_a682_eccb,
            0x9b74_3435_f863_3f67,
            0x57ee_7756_96a7_9bd8,
            0xc7d5_38ba_8c01_0bc2,
        ]
    );
}
