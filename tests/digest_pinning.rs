//! Receipt-stream digest pinning: the continuous pipeline's per-tick
//! digests for a fixed configuration, as produced by `rcloak simulate
//! --ticks 6 --cars 300 --grid 8x8 --owners 8 --cadence 2 [--engine
//! rple]` at the default seed.
//!
//! [`TickReport::digest`] folds every issued `(owner, payload.encode())`
//! pair in order, so equality here proves a refactor changed **no byte
//! of any receipt**: same draws, same regions, same metadata. If an
//! intentional protocol change ever breaks these constants, re-pin them
//! from a trusted build and say so loudly in the commit.
//!
//! # Pin history
//!
//! * **Wire v1** (retired): pinned before the allocation-free hot-path
//!   refactor, under the xoshiro-based `DrawStream`, per-request
//!   generated keys, and the epoch-less payload encoding. First RGE
//!   digest was `0x08ab_1b44_f5d6_ed3e`, first RPLE
//!   `0x5527_b17e_13ee_f68c`. Those constants are unreachable by any
//!   current build: the keystream is now a ChaCha20-class sponge, keys
//!   come from the per-owner forward-secret chain, and payloads encode
//!   wire v2 (with the chain epoch). v1 payload bytes are explicitly
//!   rejected at decode.
//! * **Wire v2** (current): pinned below from the first trusted build of
//!   the forward-secret keystream.

use anonymizer::{AnonymizerConfig, ContinuousPipeline, EngineChoice, PipelineConfig};
use mobisim::SimConfig;
use roadnet::grid_city;

/// The exact configuration `rcloak simulate` builds for
/// `--ticks 6 --cars 300 --grid 8x8 --owners 8 --cadence 2 --seed 42`.
fn pipeline(engine: EngineChoice) -> ContinuousPipeline {
    let seed = 42u64;
    ContinuousPipeline::new(
        grid_city(8, 8, 100.0),
        SimConfig {
            cars: 300,
            seed,
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
        PipelineConfig {
            dt: 10.0,
            snapshot_cadence: 2,
            tracked_owners: 8,
            seed: seed ^ 0x51e_71c4,
            verify: true,
            lbs_probes: 4,
            ..Default::default()
        },
    )
}

fn digests(engine: EngineChoice) -> Vec<u64> {
    let mut p = pipeline(engine);
    p.run(6)
        .expect("pinned configuration verifies cleanly")
        .iter()
        .map(|r| r.digest)
        .collect()
}

#[test]
fn rge_receipt_stream_matches_the_wire_v2_baseline() {
    assert_eq!(
        digests(EngineChoice::Rge),
        vec![
            0x80b0_db4a_cb22_03c2,
            0x8abc_8fb3_46ae_24ed,
            0x45e0_1569_0f5d_b844,
            0x84ba_02b9_0b5c_1c54,
            0x9bf8_eea3_2748_8aed,
            0x69a6_08af_9f9c_ddd5,
        ]
    );
}

#[test]
fn rple_receipt_stream_matches_the_wire_v2_baseline() {
    assert_eq!(
        digests(EngineChoice::Rple { t_len: 12 }),
        vec![
            0x4d8a_3233_7429_d395,
            0x3ea2_27cb_a300_88b1,
            0xd288_6a78_07e8_0d87,
            0xcb7e_5a0b_a2e9_4502,
            0xd28f_15d0_4369_be8d,
            0x17d3_11e0_64c5_c3d9,
        ]
    );
}
