//! Cross-crate integration: traffic simulation → anonymizer service →
//! payload over the wire → requester-side de-anonymization.

use anonymizer::{AnonymizerConfig, AnonymizerService, Deanonymizer, Engine, EngineChoice};
use reversecloak::prelude::*;

fn build_world(engine: EngineChoice, seed: u64) -> (AnonymizerService, Deanonymizer, Simulation) {
    let net = roadnet::grid_city(9, 9, 100.0);
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars: 600,
            seed,
            ..Default::default()
        },
    );
    sim.run(12, 5.0);
    let snapshot = OccupancySnapshot::capture(&sim);
    let service = AnonymizerService::new(
        sim.network().clone(),
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
    );
    service.update_snapshot(snapshot);
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), engine),
    );
    (service, dean, sim)
}

#[test]
fn simulated_traffic_to_exact_recovery_rge() {
    let (service, dean, sim) = build_world(EngineChoice::Rge, 1);
    let mut rng = rand::thread_rng();
    for car in [0usize, 7, 42, 99] {
        let segment = sim.cars()[car].segment();
        let owner = format!("car-{car}");
        let receipt = service
            .anonymize_owner(&owner, segment, None, &mut rng)
            .expect("cloaking succeeds in normal traffic");
        service.register_requester(&owner, "police", TrustDegree(10), Level(0));
        let keys = service.fetch_keys(&owner, "police").unwrap();
        // Over the wire and back.
        let bytes = receipt.payload.encode();
        let view = dean.reduce_encoded(&bytes, &keys).unwrap();
        assert_eq!(view.segments, vec![segment], "car {car}");
        assert_eq!(view.level, Level(0));
    }
}

#[test]
fn simulated_traffic_to_exact_recovery_rple() {
    let (service, dean, sim) = build_world(EngineChoice::Rple { t_len: 10 }, 2);
    let mut rng = rand::thread_rng();
    for car in [3usize, 11, 77] {
        let segment = sim.cars()[car].segment();
        let owner = format!("car-{car}");
        let receipt = service
            .anonymize_owner(&owner, segment, None, &mut rng)
            .expect("RPLE cloaking succeeds (with retries) in normal traffic");
        service.register_requester(&owner, "police", TrustDegree(10), Level(0));
        let keys = service.fetch_keys(&owner, "police").unwrap();
        let view = dean.reduce(&receipt.payload, &keys).unwrap();
        assert_eq!(view.segments, vec![segment], "car {car}");
    }
}

#[test]
fn k_anonymity_holds_at_every_level() {
    let (service, dean, sim) = build_world(EngineChoice::Rge, 3);
    let snapshot = OccupancySnapshot::capture(&sim);
    let mut rng = rand::thread_rng();
    let segment = sim.cars()[5].segment();
    let receipt = service
        .anonymize_owner("car-5", segment, None, &mut rng)
        .unwrap();
    service.register_requester("car-5", "auditor", TrustDegree(10), Level(0));
    let keys = service.fetch_keys("car-5", "auditor").unwrap();
    let views = dean.peel_progressively(&receipt.payload, &keys).unwrap();
    // The default profile asks k = 5, 10, 20 for L1..L3. Check each view
    // against the snapshot the cloak was built from.
    let expected_k = [20u64, 10, 5, 0]; // views are L3, L2, L1, L0
    for (view, &k) in views.iter().zip(&expected_k) {
        let users = snapshot.users_in(view.segments.iter().copied());
        assert!(
            users >= k,
            "level {} region of {} segments has {users} users, needs {k}",
            view.level,
            view.segments.len()
        );
    }
}

#[test]
fn regions_are_connected_at_every_level() {
    let (service, dean, sim) = build_world(EngineChoice::Rge, 4);
    let mut rng = rand::thread_rng();
    let segment = sim.cars()[31].segment();
    let receipt = service
        .anonymize_owner("car-31", segment, None, &mut rng)
        .unwrap();
    service.register_requester("car-31", "auditor", TrustDegree(10), Level(0));
    let keys = service.fetch_keys("car-31", "auditor").unwrap();
    let views = dean.peel_progressively(&receipt.payload, &keys).unwrap();
    for view in &views {
        assert!(
            service.network().segments_connected(&view.segments),
            "level {} region is disconnected",
            view.level
        );
    }
}

#[test]
fn concurrent_server_end_to_end() {
    let net = roadnet::grid_city(8, 8, 100.0);
    let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
    let server = AnonymizerServer::start(net, snapshot, AnonymizerConfig::default(), 3, 99);
    let mut receipts = Vec::new();
    for i in 0..8 {
        let owner = format!("owner-{i}");
        let seg = SegmentId(i * 13 % 100);
        receipts.push((
            owner.clone(),
            seg,
            server.anonymize(&owner, seg, None).unwrap(),
        ));
    }
    // The service is shared lock-free: key management runs concurrently
    // with (and independently of) the anonymize path.
    let service = server.service();
    for (owner, _, _) in &receipts {
        service.register_requester(owner, "police", TrustDegree(10), Level(0));
    }
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), service.config().engine),
    );
    for (owner, seg, receipt) in &receipts {
        let keys = service.fetch_keys(owner, "police").unwrap();
        let view = dean.reduce(&receipt.payload, &keys).unwrap();
        assert_eq!(view.segments, vec![*seg]);
    }
    server.shutdown();
}

#[test]
fn baseline_matches_reversible_region_quality_but_cannot_reverse() {
    let (_, _, sim) = build_world(EngineChoice::Rge, 5);
    let snapshot = OccupancySnapshot::capture(&sim);
    let req = LevelRequirement::with_k(12);
    let segment = sim.cars()[50].segment();
    let mut rng = rand::thread_rng();
    let out = cloak::random_expansion(sim.network(), &snapshot, segment, &req, &mut rng).unwrap();
    assert!(snapshot.users_in(out.segments.iter().copied()) >= 12);
    assert!(sim.network().segments_connected(&out.segments));
    // The baseline has no payload, no keys, no backward walk: nothing to
    // call — irreversibility is structural. (This assertion documents it.)
}

#[test]
fn atlanta_scale_end_to_end() {
    let net = roadnet::atlanta_like(11);
    let mut sim = Simulation::new(
        net,
        SimConfig {
            cars: 10_000,
            seed: 11,
            ..Default::default()
        },
    );
    sim.run(3, 10.0);
    let snapshot = OccupancySnapshot::capture(&sim);
    let service = AnonymizerService::new(sim.network().clone(), AnonymizerConfig::default());
    service.update_snapshot(snapshot.clone());
    let mut rng = rand::thread_rng();
    let segment = sim.cars()[123].segment();
    let receipt = service
        .anonymize_owner("car-123", segment, None, &mut rng)
        .unwrap();
    // k-anonymity at the top level (k = 20 in the default profile); in
    // dense downtown traffic this can take far fewer than 20 segments.
    assert!(snapshot.users_in(receipt.payload.segments.iter().copied()) >= 20);
    service.register_requester("car-123", "police", TrustDegree(10), Level(0));
    let keys = service.fetch_keys("car-123", "police").unwrap();
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), service.config().engine),
    );
    let view = dean.reduce(&receipt.payload, &keys).unwrap();
    assert_eq!(view.segments, vec![segment]);
}
