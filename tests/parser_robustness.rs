//! Robustness of every parser in the workspace: arbitrary bytes must
//! produce clean errors, never panics — these parsers sit on trust
//! boundaries (map files, keyrings, traces, payloads from the network).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn map_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = roadnet::io::read_map(bytes.as_slice());
    }

    #[test]
    fn map_parser_never_panics_on_textish_input(
        text in "[a-z0-9 .\\-\n#]{0,256}",
    ) {
        let _ = roadnet::io::read_map(text.as_bytes());
    }

    #[test]
    fn keyring_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = keystream::read_keyring(bytes.as_slice());
    }

    #[test]
    fn trace_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = mobisim::Trace::read_from(bytes.as_slice());
    }

    #[test]
    fn payload_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = cloak::CloakPayload::decode(&bytes);
    }

    #[test]
    fn payload_decoder_never_panics_on_near_valid_input(
        seg_count in 0u32..10,
        level_count in 0u8..4,
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Start from a valid header, then degrade.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RCLK");
        bytes.push(1); // version
        bytes.push(1); // algorithm
        bytes.extend_from_slice(&42u64.to_le_bytes());
        bytes.extend_from_slice(&seg_count.to_le_bytes());
        for i in 0..seg_count {
            bytes.extend_from_slice(&i.to_le_bytes());
        }
        bytes.push(level_count);
        bytes.extend_from_slice(&tail);
        let _ = cloak::CloakPayload::decode(&bytes);
    }

    #[test]
    fn key_hex_parser_never_panics(text in ".{0,100}") {
        let _ = keystream::Key256::from_hex(&text);
    }
}

/// Renderers must not panic for any region/levels combination over a
/// valid network (they are reachable from untrusted payloads).
#[test]
fn renderers_handle_arbitrary_regions() {
    use keystream::Level;
    use roadnet::SegmentId;
    let net = roadnet::grid_city(4, 4, 100.0);
    let cases: Vec<Vec<(Level, Vec<SegmentId>)>> = vec![
        vec![],
        vec![(Level(0), vec![])],
        vec![(Level(9), net.segment_ids().collect())],
        vec![
            (Level(3), vec![SegmentId(0)]),
            (Level(1), vec![SegmentId(0), SegmentId(1)]),
            (Level(2), vec![SegmentId(2)]),
        ],
        // Levels above the color/symbol tables.
        vec![(Level(200), vec![SegmentId(5)])],
    ];
    for regions in &cases {
        let ascii = anonymizer::render_regions(&net, regions, 40, 16);
        assert!(!ascii.is_empty());
        let svg = anonymizer::render_svg(&net, regions, 200);
        assert!(svg.starts_with("<svg"));
    }
}
