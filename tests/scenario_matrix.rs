//! The cross-engine scenario/invariant harness.
//!
//! Runs the continuous anonymization pipeline over a scenario matrix —
//! traffic density × k-level profile × engine (RGE vs RPLE) × snapshot
//! cadence — and asserts, at every tick of every cell:
//!
//! * **reversibility** — every issued receipt deanonymizes to the exact
//!   owner segment (checked inside `ContinuousPipeline::tick`),
//! * **k-anonymity** — against the snapshot the receipt was issued
//!   under, not whatever snapshot is current later,
//! * **grant preservation** — the auditor registered at the first cloak
//!   keeps its keys across every re-anonymization,
//! * **batch ≡ sequential determinism** — the per-tick receipt digest is
//!   identical at batch parallelism 1 and 3,
//!
//! plus differential RGE-vs-RPLE region-metric comparisons per matrix
//! row, and **attack cells**: the continuous adversarial evaluation
//! (`cloak::attack::temporal` through the pipeline's attack leg) must
//! keep the keyless adversary's posterior near-uniform against both
//! reversible engines while the keyless-deterministic NRE control
//! collapses under the same correlation attacks. The default profile is
//! sized for tier-1 speed; set `SCENARIO_PROFILE=full` for longer runs
//! with more owners (the attack cells then cover 100+ ticks, matching
//! the `rcloak attack` CLI run).

use anonymizer::{AttackConfig, AttackRecord};
use cloak::{AdversaryMode, QualitySummary};
use reversecloak::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Cell {
    density: &'static str,
    cars: usize,
    ks: &'static [u32],
    engine: EngineChoice,
    cadence: usize,
}

impl Cell {
    fn name(&self) -> String {
        format!(
            "{}/k{:?}/{:?}/cadence{}",
            self.density, self.ks, self.engine, self.cadence
        )
    }
}

const DENSITIES: [(&str, usize); 2] = [("sparse", 60), ("dense", 300)];
const K_PROFILES: [&[u32]; 2] = [&[3, 6], &[4, 8, 16]];
const ENGINES: [EngineChoice; 2] = [EngineChoice::Rge, EngineChoice::Rple { t_len: 10 }];
const CADENCES: [usize; 2] = [1, 3];

/// The full matrix: 2 densities × 2 k-profiles × 2 engines × 2 cadences
/// = 16 cells.
fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (density, cars) in DENSITIES {
        for ks in K_PROFILES {
            for engine in ENGINES {
                for cadence in CADENCES {
                    cells.push(Cell {
                        density,
                        cars,
                        ks,
                        engine,
                        cadence,
                    });
                }
            }
        }
    }
    cells
}

/// (ticks, tracked owners): quick by default, bigger under
/// `SCENARIO_PROFILE=full`.
fn profile_size() -> (usize, usize) {
    match std::env::var("SCENARIO_PROFILE").as_deref() {
        Ok("full") => (12, 10),
        _ => (4, 6),
    }
}

fn privacy_profile(ks: &[u32]) -> PrivacyProfile {
    let mut builder = PrivacyProfile::builder();
    for &k in ks {
        builder = builder.level(LevelRequirement::with_k(k));
    }
    builder.build().expect("matrix profiles are valid")
}

/// Runs one cell at the given batch parallelism; the pipeline's per-tick
/// verification enforces reversibility, issue-time k-anonymity and grant
/// preservation, so an `Err` from `run` fails the cell.
fn run_cell(
    cell: &Cell,
    ticks: usize,
    owners: usize,
    parallelism: usize,
) -> Vec<anonymizer::TickReport> {
    let config = AnonymizerConfig {
        engine: cell.engine,
        default_profile: privacy_profile(cell.ks),
        batch_parallelism: parallelism,
        ..Default::default()
    };
    let mut pipeline = anonymizer::ContinuousPipeline::new(
        roadnet::grid_city(8, 8, 100.0),
        SimConfig {
            cars: cell.cars,
            seed: 0xce11,
            ..Default::default()
        },
        config,
        anonymizer::PipelineConfig {
            dt: 8.0,
            snapshot_cadence: cell.cadence,
            tracked_owners: owners,
            seed: 0x5ce_0a10,
            verify: true,
            lbs_probes: 2,
            poi_count: 60,
            attack: None,
            ..Default::default()
        },
    );
    pipeline
        .run(ticks)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.name()))
}

fn summarize(reports: &[anonymizer::TickReport]) -> (usize, usize, QualitySummary) {
    let issued = reports.iter().map(|r| r.issued).sum();
    let failed = reports.iter().map(|r| r.failed).sum();
    let mut quality = QualitySummary::new();
    for r in reports {
        quality.merge(&r.quality);
    }
    (issued, failed, quality)
}

#[test]
fn scenario_matrix_holds_invariants_in_every_cell() {
    let cells = matrix();
    assert!(cells.len() >= 12, "matrix must cover at least 12 cells");
    let (ticks, owners) = profile_size();
    let mut summaries: Vec<(Cell, usize, QualitySummary)> = Vec::new();

    for cell in &cells {
        let sequential = run_cell(cell, ticks, owners, 1);
        let parallel = run_cell(cell, ticks, owners, 3);

        // Batch ≡ sequential determinism: the receipt stream digest per
        // tick is independent of how the batch was scheduled.
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(
                s.digest,
                p.digest,
                "{}: tick {} diverged across parallelism",
                cell.name(),
                s.tick
            );
        }

        let (issued, failed, quality) = summarize(&sequential);
        // Every receipt that was issued also verified (reversibility,
        // issue-time k-anonymity, grant preservation) — tick() would
        // have errored otherwise; double-check the accounting.
        for r in &sequential {
            assert_eq!(r.verified, r.issued, "{}: tick {}", cell.name(), r.tick);
        }
        assert!(issued > 0, "{}: nothing issued", cell.name());
        if matches!(cell.engine, EngineChoice::Rge) {
            assert_eq!(failed, 0, "{}: RGE never dead-ends on a grid", cell.name());
        } else {
            assert!(
                failed * 2 <= ticks * owners,
                "{}: RPLE failed {failed}/{} requests",
                cell.name(),
                ticks * owners
            );
        }
        assert!(
            quality.min_relative_anonymity() >= 1.0,
            "{}: worst relative anonymity {:.3} < 1",
            cell.name(),
            quality.min_relative_anonymity()
        );
        // Snapshot cadence is respected.
        for r in &sequential {
            assert_eq!(
                r.snapshot_refreshed,
                r.tick % cell.cadence as u64 == 0,
                "{}: tick {}",
                cell.name(),
                r.tick
            );
        }
        summaries.push((*cell, issued, quality));
    }

    // Differential RGE vs RPLE: for each (density, ks, cadence) row the
    // two engines must both certify k-anonymity, and their mean region
    // metrics must be in the same regime (RPLE trades preassigned-table
    // memory for walk speed, not region quality).
    let mut compared = 0;
    for (a, issued_a, qa) in &summaries {
        if !matches!(a.engine, EngineChoice::Rge) {
            continue;
        }
        let (b, issued_b, qb) = summaries
            .iter()
            .find(|(b, _, _)| {
                matches!(b.engine, EngineChoice::Rple { .. })
                    && b.density == a.density
                    && b.ks == a.ks
                    && b.cadence == a.cadence
            })
            .map(|(b, i, q)| (b, i, q))
            .expect("every RGE cell has an RPLE twin");
        compared += 1;
        assert!(*issued_a > 0 && *issued_b > 0);
        assert!(qa.min_relative_anonymity() >= 1.0 && qb.min_relative_anonymity() >= 1.0);
        let (small, large) = if qa.mean_segments() <= qb.mean_segments() {
            (qa.mean_segments(), qb.mean_segments())
        } else {
            (qb.mean_segments(), qa.mean_segments())
        };
        assert!(
            large <= small * 50.0,
            "{} vs {:?}: mean regions {small:.1} vs {large:.1} segments are different regimes",
            a.name(),
            b.engine
        );
        // Both engines must at least reach the top-level k in segments
        // when every segment holds at most a handful of users.
        let k_top = *a.ks.last().unwrap() as f64;
        let densest = a.cars as f64 / 112.0; // 8x8 grid segment count
        assert!(
            qa.mean_users() >= k_top && qb.mean_users() >= k_top,
            "{}: mean users below top k ({densest:.2} cars/segment)",
            a.name()
        );
    }
    assert_eq!(compared, 8, "every matrix row compared RGE against RPLE");
}

/// (ticks, attacked owners) for the attack cells: the full profile
/// covers ≥100 ticks, matching the acceptance bar of the `rcloak
/// attack` CLI run.
fn attack_profile_size() -> (usize, usize) {
    match std::env::var("SCENARIO_PROFILE").as_deref() {
        Ok("full") => (120, 8),
        _ => (30, 6),
    }
}

fn attack_pipeline(
    engine: EngineChoice,
    cars: usize,
    ks: &[u32],
    mode: AdversaryMode,
    owners: usize,
) -> anonymizer::ContinuousPipeline {
    anonymizer::ContinuousPipeline::new(
        roadnet::grid_city(8, 8, 100.0),
        SimConfig {
            cars,
            seed: 0xa77ac,
            ..Default::default()
        },
        AnonymizerConfig {
            engine,
            default_profile: privacy_profile(ks),
            ..Default::default()
        },
        anonymizer::PipelineConfig {
            dt: 10.0,
            tracked_owners: owners,
            seed: 0xa77_ac5e,
            verify: false,
            lbs_probes: 0,
            attack: Some(AttackConfig {
                mode,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
}

/// The tentpole separation claim, asserted with slack: against RGE and
/// RPLE the combined keyless adversary (movement model + snapshot
/// correlation + replay) keeps the per-owner posterior near-uniform —
/// user-identity entropy stays around `log2(k_top)` — while the
/// keyless-deterministic NRE control collapses to a near-singleton
/// posterior under the same attacks, because its perturbation can be
/// replayed.
#[test]
fn attack_cells_separate_reversible_engines_from_keyless_baseline() {
    let (ticks, owners) = attack_profile_size();
    for (cell, cars, ks) in [
        ("sparse/k[4,8]", 150, &[4u32, 8][..]),
        ("dense/k[4,8,16]", 300, &[4, 8, 16][..]),
    ] {
        for engine in ENGINES {
            let mut pipeline = attack_pipeline(engine, cars, ks, AdversaryMode::All, owners);
            pipeline
                .run(ticks)
                .unwrap_or_else(|e| panic!("{cell}/{engine:?}: {e}"));
            let name = format!("{cell}/{engine:?}");
            let summary = pipeline.attack_summary().expect("attack leg on").clone();
            let baseline = pipeline
                .baseline_attack_summary()
                .expect("NRE control on")
                .clone();
            let k_top = (*ks.last().unwrap() as f64).log2();

            // The combined adversary is sound: it never loses the owner.
            assert_eq!(summary.soundness(), 1.0, "{name}: engine stream");
            assert_eq!(baseline.soundness(), 1.0, "{name}: control stream");
            assert!(summary.observations() as usize >= ticks * owners / 2);

            // Reversible engines: posterior entropy over user identities
            // bounded below by ~log2(k_top) (half a bit of slack), and
            // guessing stays near chance.
            assert!(
                summary.mean_user_entropy() >= k_top - 0.5,
                "{name}: user entropy {:.2} collapsed below log2(k)={k_top:.2}",
                summary.mean_user_entropy()
            );
            assert!(
                summary.guess_success_rate() <= 0.55,
                "{name}: adversary guesses {:.2} of keyed cloaks",
                summary.guess_success_rate()
            );

            // The keyless deterministic control collapses: near-zero
            // segment entropy, near-singleton anonymity sets, and the
            // adversary guesses the exact segment most of the time.
            assert!(
                baseline.mean_entropy() <= 0.75,
                "{name}: NRE kept {:.2} bits",
                baseline.mean_entropy()
            );
            assert!(
                baseline.mean_support() <= 2.0,
                "{name}: NRE anonymity set {:.2}",
                baseline.mean_support()
            );
            assert!(
                baseline.guess_success_rate() >= 0.6,
                "{name}: NRE guess success only {:.2}",
                baseline.guess_success_rate()
            );

            // And the separation itself, on the k-anonymity axis.
            assert!(
                summary.mean_user_entropy() - baseline.mean_user_entropy() >= 1.0,
                "{name}: engine {:.2} vs NRE {:.2} bits",
                summary.mean_user_entropy(),
                baseline.mean_user_entropy()
            );

            // The per-owner log is CSV-exportable over every tick.
            let records = pipeline.attack_records();
            assert!(records.iter().any(|r| r.scheme != "nre"));
            assert!(records.iter().any(|r| r.scheme == "nre"));
            assert_eq!(
                records.iter().map(|r| r.observation.tick).max(),
                Some(ticks as u64),
                "{name}: log covers the whole run"
            );
            let header_cols = AttackRecord::CSV_HEADER.split(',').count();
            assert!(records
                .iter()
                .all(|r| r.csv_row().split(',').count() == header_cols));
        }
    }
}

/// Every adversary mode runs against a keyed stream with coherent
/// bookkeeping; the sound modes (move, all, correlate) never lose the
/// owner, while the naive peel intersection is allowed to — its
/// soundness rate is exactly what exposes it as bogus against keyed
/// streams.
#[test]
fn every_adversary_mode_tracks_a_keyed_stream() {
    let (ticks, owners) = (attack_profile_size().0.min(20), 4);
    for mode in [
        AdversaryMode::Peel,
        AdversaryMode::Correlate,
        AdversaryMode::Move,
        AdversaryMode::All,
    ] {
        let mut pipeline = attack_pipeline(EngineChoice::Rge, 200, &[4, 8], mode, owners);
        pipeline
            .run(ticks)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let summary = pipeline.attack_summary().expect("attack leg on").clone();
        assert_eq!(summary.observations(), (ticks * owners) as u64, "{mode:?}");
        assert!(summary.mean_support() >= 1.0, "{mode:?}");
        match mode {
            AdversaryMode::Peel => {
                // Unsound by design; nothing to assert beyond bookkeeping.
            }
            _ => assert_eq!(summary.soundness(), 1.0, "{mode:?} must be sound"),
        }
    }
}

/// The restart cell: for every engine × cadence pair, crash the
/// pipeline mid-run (injected, in the ratchet-advance/receipt-issue
/// window), rebuild it over the surviving chain store, and keep going.
/// Restart is store-agnostic — any [`keystream::ChainStore`] carries the
/// chains — so the cell runs over a shared in-process store; the
/// file-backed kill-and-recover path is `tests/crash_recovery.rs`.
/// Every per-tick invariant (reversibility, issue-time k-anonymity,
/// grant preservation) must hold after the restart, and every owner's
/// epoch must continue strictly past the crash-window advance.
#[test]
fn restart_cell_resumes_chains_and_invariants_across_engines() {
    use keystream::ChainStore;
    use std::sync::Arc;

    let (ticks, owners) = profile_size();
    let crash_tick = 2;
    for engine in ENGINES {
        for cadence in CADENCES {
            let name = format!("restart/{engine:?}/cadence{cadence}");
            let store: Arc<dyn ChainStore> = Arc::new(keystream::MemStore::new());
            let config = || AnonymizerConfig {
                engine,
                default_profile: privacy_profile(&[3, 6]),
                ..Default::default()
            };
            let pipeline_cfg = |fault| anonymizer::PipelineConfig {
                snapshot_cadence: cadence,
                tracked_owners: owners,
                seed: 0x03e5_7a27,
                lbs_probes: 0,
                fault,
                ..Default::default()
            };
            let sim_cfg = SimConfig {
                cars: 150,
                seed: 0xce11,
                ..Default::default()
            };

            let mut pipeline = anonymizer::ContinuousPipeline::with_store(
                roadnet::grid_city(8, 8, 100.0),
                sim_cfg.clone(),
                config(),
                pipeline_cfg(Some(anonymizer::FaultPlan {
                    crash_at_tick: Some(crash_tick),
                    ..Default::default()
                })),
                store.clone(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            for _ in 1..crash_tick {
                let report = pipeline.tick().unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(report.verified, report.issued, "{name}");
            }
            let err = pipeline.tick().expect_err("crash fires on schedule");
            assert!(err.message.contains("injected crash"), "{name}: {err}");
            drop(pipeline);

            // The crash-window advances reached the store before the
            // receipts would have been issued.
            let journaled = store.load().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(journaled.len(), owners, "{name}: all owners journaled");
            assert!(
                journaled.iter().all(|(_, c)| c.epoch() == crash_tick),
                "{name}: crash-window epoch journaled"
            );

            // Restart over the surviving store and run the cell out.
            let mut pipeline = anonymizer::ContinuousPipeline::with_store(
                roadnet::grid_city(8, 8, 100.0),
                sim_cfg,
                config(),
                pipeline_cfg(None),
                store.clone(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            let reports = pipeline
                .run(ticks)
                .unwrap_or_else(|e| panic!("{name}: post-restart: {e}"));
            assert!(
                reports
                    .iter()
                    .all(|r| r.verified == r.issued && r.issued > 0),
                "{name}: post-restart receipts verify"
            );
            let service = pipeline.service();
            for (owner, chain) in &journaled {
                assert_eq!(
                    service.owner_epoch(owner),
                    Some(chain.epoch() + ticks as u64),
                    "{name}: {owner} resumed past the crash-window epoch"
                );
            }
        }
    }
}

/// Receipts stay valid against their issuing snapshot even when the
/// traffic has moved on: re-checking an old tick's quality against the
/// *latest* snapshot may fail, but the pipeline's per-tick check (bound
/// to the issuing snapshot) never does. This pins the temporal contract
/// the harness relies on.
#[test]
fn snapshot_churn_does_not_retroactively_invalidate_receipts() {
    let mut pipeline = anonymizer::ContinuousPipeline::new(
        roadnet::grid_city(8, 8, 100.0),
        SimConfig {
            cars: 150,
            seed: 9,
            ..Default::default()
        },
        AnonymizerConfig::default(),
        anonymizer::PipelineConfig {
            tracked_owners: 8,
            snapshot_cadence: 1,
            lbs_probes: 0,
            ..Default::default()
        },
    );
    let reports = pipeline.run(6).expect("invariants hold under churn");
    // The snapshot genuinely churned (cars moved between ticks) …
    let service = pipeline.service();
    assert!(reports.iter().all(|r| r.snapshot_refreshed));
    // … and every tick's receipts verified against their own snapshot.
    assert!(reports.iter().all(|r| r.verified == r.issued));
    assert_eq!(service.owner_count(), 8);
}
