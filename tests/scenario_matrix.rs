//! The cross-engine scenario/invariant harness.
//!
//! Runs the continuous anonymization pipeline over a scenario matrix —
//! traffic density × k-level profile × engine (RGE vs RPLE) × snapshot
//! cadence — and asserts, at every tick of every cell:
//!
//! * **reversibility** — every issued receipt deanonymizes to the exact
//!   owner segment (checked inside `ContinuousPipeline::tick`),
//! * **k-anonymity** — against the snapshot the receipt was issued
//!   under, not whatever snapshot is current later,
//! * **grant preservation** — the auditor registered at the first cloak
//!   keeps its keys across every re-anonymization,
//! * **batch ≡ sequential determinism** — the per-tick receipt digest is
//!   identical at batch parallelism 1 and 3,
//!
//! plus differential RGE-vs-RPLE region-metric comparisons per matrix
//! row. The adversarial evaluation that used to live here as two ad-hoc
//! attack cells is now the full scenario tournament — every engine ×
//! every adversary × every behavior mix — in `tests/tournament.rs`
//! (runner: `anonymizer::tournament`). The default profile is sized for
//! tier-1 speed; set `SCENARIO_PROFILE=full` for longer runs with more
//! owners.

use cloak::QualitySummary;
use reversecloak::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Cell {
    density: &'static str,
    cars: usize,
    ks: &'static [u32],
    engine: EngineChoice,
    cadence: usize,
}

impl Cell {
    fn name(&self) -> String {
        format!(
            "{}/k{:?}/{:?}/cadence{}",
            self.density, self.ks, self.engine, self.cadence
        )
    }
}

const DENSITIES: [(&str, usize); 2] = [("sparse", 60), ("dense", 300)];
const K_PROFILES: [&[u32]; 2] = [&[3, 6], &[4, 8, 16]];
const ENGINES: [EngineChoice; 2] = [EngineChoice::Rge, EngineChoice::Rple { t_len: 10 }];
const CADENCES: [usize; 2] = [1, 3];

/// The full matrix: 2 densities × 2 k-profiles × 2 engines × 2 cadences
/// = 16 cells.
fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (density, cars) in DENSITIES {
        for ks in K_PROFILES {
            for engine in ENGINES {
                for cadence in CADENCES {
                    cells.push(Cell {
                        density,
                        cars,
                        ks,
                        engine,
                        cadence,
                    });
                }
            }
        }
    }
    cells
}

/// (ticks, tracked owners): quick by default, bigger under
/// `SCENARIO_PROFILE=full`.
fn profile_size() -> (usize, usize) {
    match std::env::var("SCENARIO_PROFILE").as_deref() {
        Ok("full") => (12, 10),
        _ => (4, 6),
    }
}

fn privacy_profile(ks: &[u32]) -> PrivacyProfile {
    let mut builder = PrivacyProfile::builder();
    for &k in ks {
        builder = builder.level(LevelRequirement::with_k(k));
    }
    builder.build().expect("matrix profiles are valid")
}

/// Runs one cell at the given batch parallelism; the pipeline's per-tick
/// verification enforces reversibility, issue-time k-anonymity and grant
/// preservation, so an `Err` from `run` fails the cell.
fn run_cell(
    cell: &Cell,
    ticks: usize,
    owners: usize,
    parallelism: usize,
) -> Vec<anonymizer::TickReport> {
    let config = AnonymizerConfig {
        engine: cell.engine,
        default_profile: privacy_profile(cell.ks),
        batch_parallelism: parallelism,
        ..Default::default()
    };
    let mut pipeline = anonymizer::ContinuousPipeline::new(
        roadnet::grid_city(8, 8, 100.0),
        SimConfig {
            cars: cell.cars,
            seed: 0xce11,
            ..Default::default()
        },
        config,
        anonymizer::PipelineConfig {
            dt: 8.0,
            snapshot_cadence: cell.cadence,
            tracked_owners: owners,
            seed: 0x5ce_0a10,
            verify: true,
            lbs_probes: 2,
            poi_count: 60,
            attack: None,
            ..Default::default()
        },
    );
    pipeline
        .run(ticks)
        .unwrap_or_else(|e| panic!("{}: {e}", cell.name()))
}

fn summarize(reports: &[anonymizer::TickReport]) -> (usize, usize, QualitySummary) {
    let issued = reports.iter().map(|r| r.issued).sum();
    let failed = reports.iter().map(|r| r.failed).sum();
    let mut quality = QualitySummary::new();
    for r in reports {
        quality.merge(&r.quality);
    }
    (issued, failed, quality)
}

#[test]
fn scenario_matrix_holds_invariants_in_every_cell() {
    let cells = matrix();
    assert!(cells.len() >= 12, "matrix must cover at least 12 cells");
    let (ticks, owners) = profile_size();
    let mut summaries: Vec<(Cell, usize, QualitySummary)> = Vec::new();

    for cell in &cells {
        let sequential = run_cell(cell, ticks, owners, 1);
        let parallel = run_cell(cell, ticks, owners, 3);

        // Batch ≡ sequential determinism: the receipt stream digest per
        // tick is independent of how the batch was scheduled.
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(
                s.digest,
                p.digest,
                "{}: tick {} diverged across parallelism",
                cell.name(),
                s.tick
            );
        }

        let (issued, failed, quality) = summarize(&sequential);
        // Every receipt that was issued also verified (reversibility,
        // issue-time k-anonymity, grant preservation) — tick() would
        // have errored otherwise; double-check the accounting.
        for r in &sequential {
            assert_eq!(r.verified, r.issued, "{}: tick {}", cell.name(), r.tick);
        }
        assert!(issued > 0, "{}: nothing issued", cell.name());
        if matches!(cell.engine, EngineChoice::Rge) {
            assert_eq!(failed, 0, "{}: RGE never dead-ends on a grid", cell.name());
        } else {
            assert!(
                failed * 2 <= ticks * owners,
                "{}: RPLE failed {failed}/{} requests",
                cell.name(),
                ticks * owners
            );
        }
        assert!(
            quality.min_relative_anonymity() >= 1.0,
            "{}: worst relative anonymity {:.3} < 1",
            cell.name(),
            quality.min_relative_anonymity()
        );
        // Snapshot cadence is respected.
        for r in &sequential {
            assert_eq!(
                r.snapshot_refreshed,
                r.tick % cell.cadence as u64 == 0,
                "{}: tick {}",
                cell.name(),
                r.tick
            );
        }
        summaries.push((*cell, issued, quality));
    }

    // Differential RGE vs RPLE: for each (density, ks, cadence) row the
    // two engines must both certify k-anonymity, and their mean region
    // metrics must be in the same regime (RPLE trades preassigned-table
    // memory for walk speed, not region quality).
    let mut compared = 0;
    for (a, issued_a, qa) in &summaries {
        if !matches!(a.engine, EngineChoice::Rge) {
            continue;
        }
        let (b, issued_b, qb) = summaries
            .iter()
            .find(|(b, _, _)| {
                matches!(b.engine, EngineChoice::Rple { .. })
                    && b.density == a.density
                    && b.ks == a.ks
                    && b.cadence == a.cadence
            })
            .map(|(b, i, q)| (b, i, q))
            .expect("every RGE cell has an RPLE twin");
        compared += 1;
        assert!(*issued_a > 0 && *issued_b > 0);
        assert!(qa.min_relative_anonymity() >= 1.0 && qb.min_relative_anonymity() >= 1.0);
        let (small, large) = if qa.mean_segments() <= qb.mean_segments() {
            (qa.mean_segments(), qb.mean_segments())
        } else {
            (qb.mean_segments(), qa.mean_segments())
        };
        assert!(
            large <= small * 50.0,
            "{} vs {:?}: mean regions {small:.1} vs {large:.1} segments are different regimes",
            a.name(),
            b.engine
        );
        // Both engines must at least reach the top-level k in segments
        // when every segment holds at most a handful of users.
        let k_top = *a.ks.last().unwrap() as f64;
        let densest = a.cars as f64 / 112.0; // 8x8 grid segment count
        assert!(
            qa.mean_users() >= k_top && qb.mean_users() >= k_top,
            "{}: mean users below top k ({densest:.2} cars/segment)",
            a.name()
        );
    }
    assert_eq!(compared, 8, "every matrix row compared RGE against RPLE");
}

/// The restart cell: for every engine × cadence pair, crash the
/// pipeline mid-run (injected, in the ratchet-advance/receipt-issue
/// window), rebuild it over the surviving chain store, and keep going.
/// Restart is store-agnostic — any [`keystream::ChainStore`] carries the
/// chains — so the cell runs over a shared in-process store; the
/// file-backed kill-and-recover path is `tests/crash_recovery.rs`.
/// Every per-tick invariant (reversibility, issue-time k-anonymity,
/// grant preservation) must hold after the restart, and every owner's
/// epoch must continue strictly past the crash-window advance.
#[test]
fn restart_cell_resumes_chains_and_invariants_across_engines() {
    use keystream::ChainStore;
    use std::sync::Arc;

    let (ticks, owners) = profile_size();
    let crash_tick = 2;
    for engine in ENGINES {
        for cadence in CADENCES {
            let name = format!("restart/{engine:?}/cadence{cadence}");
            let store: Arc<dyn ChainStore> = Arc::new(keystream::MemStore::new());
            let config = || AnonymizerConfig {
                engine,
                default_profile: privacy_profile(&[3, 6]),
                ..Default::default()
            };
            let pipeline_cfg = |fault| anonymizer::PipelineConfig {
                snapshot_cadence: cadence,
                tracked_owners: owners,
                seed: 0x03e5_7a27,
                lbs_probes: 0,
                fault,
                ..Default::default()
            };
            let sim_cfg = SimConfig {
                cars: 150,
                seed: 0xce11,
                ..Default::default()
            };

            let mut pipeline = anonymizer::ContinuousPipeline::with_store(
                roadnet::grid_city(8, 8, 100.0),
                sim_cfg.clone(),
                config(),
                pipeline_cfg(Some(anonymizer::FaultPlan {
                    crash_at_tick: Some(crash_tick),
                    ..Default::default()
                })),
                store.clone(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            for _ in 1..crash_tick {
                let report = pipeline.tick().unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(report.verified, report.issued, "{name}");
            }
            let err = pipeline.tick().expect_err("crash fires on schedule");
            assert!(err.message.contains("injected crash"), "{name}: {err}");
            drop(pipeline);

            // The crash-window advances reached the store before the
            // receipts would have been issued.
            let journaled = store.load().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(journaled.len(), owners, "{name}: all owners journaled");
            assert!(
                journaled.iter().all(|(_, c)| c.epoch() == crash_tick),
                "{name}: crash-window epoch journaled"
            );

            // Restart over the surviving store and run the cell out.
            let mut pipeline = anonymizer::ContinuousPipeline::with_store(
                roadnet::grid_city(8, 8, 100.0),
                sim_cfg,
                config(),
                pipeline_cfg(None),
                store.clone(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            let reports = pipeline
                .run(ticks)
                .unwrap_or_else(|e| panic!("{name}: post-restart: {e}"));
            assert!(
                reports
                    .iter()
                    .all(|r| r.verified == r.issued && r.issued > 0),
                "{name}: post-restart receipts verify"
            );
            let service = pipeline.service();
            for (owner, chain) in &journaled {
                assert_eq!(
                    service.owner_epoch(owner),
                    Some(chain.epoch() + ticks as u64),
                    "{name}: {owner} resumed past the crash-window epoch"
                );
            }
        }
    }
}

/// Receipts stay valid against their issuing snapshot even when the
/// traffic has moved on: re-checking an old tick's quality against the
/// *latest* snapshot may fail, but the pipeline's per-tick check (bound
/// to the issuing snapshot) never does. This pins the temporal contract
/// the harness relies on.
#[test]
fn snapshot_churn_does_not_retroactively_invalidate_receipts() {
    let mut pipeline = anonymizer::ContinuousPipeline::new(
        roadnet::grid_city(8, 8, 100.0),
        SimConfig {
            cars: 150,
            seed: 9,
            ..Default::default()
        },
        AnonymizerConfig::default(),
        anonymizer::PipelineConfig {
            tracked_owners: 8,
            snapshot_cadence: 1,
            lbs_probes: 0,
            ..Default::default()
        },
    );
    let reports = pipeline.run(6).expect("invariants hold under churn");
    // The snapshot genuinely churned (cars moved between ticks) …
    let service = pipeline.service();
    assert!(reports.iter().all(|r| r.snapshot_refreshed));
    // … and every tick's receipts verified against their own snapshot.
    assert!(reports.iter().all(|r| r.verified == r.issued));
    assert_eq!(service.owner_count(), 8);
}
