//! Property test: a snapshot swap between issue and reduction never
//! breaks reversibility.
//!
//! A receipt is issued against the snapshot current at request time; the
//! service then swaps in fresh occupancy (the continuous pipeline does
//! this every cadence ticks). For randomized owner/segment/seed triples
//! on both engines, the receipt must still deanonymize to exactly the
//! original segment through the normal key-fetch path — and a receipt
//! issued *after* the swap must too.

use proptest::prelude::*;
use reversecloak::prelude::*;

fn service_with(engine: EngineChoice, per_segment: u32) -> (AnonymizerService, Deanonymizer) {
    let net = roadnet::grid_city(7, 7, 100.0);
    let service = AnonymizerService::new(
        net,
        AnonymizerConfig {
            engine,
            ..Default::default()
        },
    );
    service.update_snapshot(OccupancySnapshot::uniform(
        service.network().segment_count(),
        per_segment,
    ));
    let dean = Deanonymizer::new(
        service.network_arc(),
        Engine::build(service.network(), engine),
    );
    (service, dean)
}

/// Issues for `owner`, fetches keys as a fully-trusted requester, and
/// asserts the exact segment comes back.
fn roundtrip_exact(
    service: &AnonymizerService,
    dean: &Deanonymizer,
    owner: &str,
    segment: SegmentId,
    seed: u64,
) -> Result<(), TestCaseError> {
    let receipt = match service.anonymize_seeded(owner, segment, None, seed) {
        Ok(r) => r,
        // RPLE walks can dead-end on unlucky seeds — an availability
        // event, rejected rather than failed (reversibility is only
        // claimed for issued receipts).
        Err(_) => return Err(TestCaseError::reject("anonymization dead-ended")),
    };
    prop_assert!(receipt.payload.contains(segment));
    prop_assert!(service.register_requester(owner, "prop-auditor", TrustDegree(10), Level(0)));
    let keys = service
        .fetch_keys(owner, "prop-auditor")
        .expect("grant was just registered");
    let view = dean
        .reduce(&receipt.payload, &keys)
        .expect("issued receipts always reduce");
    prop_assert_eq!(view.level, Level(0));
    prop_assert_eq!(view.segments, vec![segment]);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn swap_between_issue_and_reduce_roundtrips_exactly(
        owner_tag in any::<u32>(),
        seg_a in 0u32..84,
        seg_b in 0u32..84,
        seed in any::<u64>(),
        density_before in 1u32..4,
        density_after in 1u32..9,
    ) {
        for engine in [EngineChoice::Rge, EngineChoice::Rple { t_len: 10 }] {
            let (service, dean) = service_with(engine, density_before);
            let owner = format!("owner-{owner_tag}");

            // Issue under the first snapshot …
            let receipt = match service.anonymize_seeded(&owner, SegmentId(seg_a), None, seed) {
                Ok(r) => r,
                Err(_) => continue, // RPLE availability, not reversibility
            };
            let issuing = service.snapshot();

            // … swap occupancy mid-flight (the receipt is already out) …
            service.update_snapshot(OccupancySnapshot::uniform(
                service.network().segment_count(),
                density_after,
            ));
            prop_assert!(service.snapshot().users_on(SegmentId(0)) == density_after);

            // … and the old receipt still reduces to the exact segment.
            prop_assert!(service.register_requester(&owner, "prop-auditor", TrustDegree(10), Level(0)));
            let keys = service.fetch_keys(&owner, "prop-auditor").expect("registered");
            let view = dean.reduce(&receipt.payload, &keys).expect("reduces");
            prop_assert_eq!(view.segments, vec![SegmentId(seg_a)], "{:?}", engine);

            // Issue-time k-anonymity was certified by the issuing
            // snapshot and is unaffected by the swap.
            let k = service.config().default_profile.top_requirement().k as u64;
            prop_assert!(issuing.users_in(receipt.payload.segments.iter().copied()) >= k);

            // A fresh receipt after the swap (re-anonymization of the
            // same owner, new segment) round-trips too, and the grant
            // survived the record rotation.
            match roundtrip_exact(&service, &dean, &owner, SegmentId(seg_b), seed ^ 0xdead_beef) {
                Ok(()) => {
                    let grants = service.requester_grants("prop-auditor");
                    prop_assert_eq!(grants, vec![(owner.clone(), TrustDegree(10))]);
                }
                // RPLE availability skip: the first receipt already
                // exercised the swap, so the case still counts.
                Err(TestCaseError::Reject(_)) => {}
                Err(fail) => return Err(fail),
            }
        }
    }
}
