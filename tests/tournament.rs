//! The scenario-tournament harness: every engine × every adversary ×
//! every behavior mix, with the separation invariants the paper's
//! privacy claim rests on asserted over the whole grid.
//!
//! The grid is run **once** per test binary (shared through a
//! `OnceLock`) at the profile selected by `TOURNAMENT_PROFILE`
//! (`quick` default, `full` for the acceptance run); every test then
//! asserts one invariant family over the shared
//! [`anonymizer::TournamentReport`]:
//!
//! 1. **soundness** — every adversary with a sound evidence model
//!    (correlate / move / all / adaptive) keeps nonzero posterior mass
//!    on the true segment in *every* cell, keyed or keyless;
//! 2. **k-anonymity bits** — RGE and RPLE hold ≥ ~`log2(k_top)` bits of
//!    user-identity entropy against every adversary — including the
//!    Bayesian trajectory particle filter — under every behavior mix;
//! 3. **NRE collapse** — the keyless deterministic control collapses
//!    below half a bit of segment entropy against every replay-capable
//!    adversary, with the adversary guessing the exact segment most of
//!    the time;
//! 4. **separation** — the identity-entropy gap between keyed engines
//!    and the NRE control is wide in every mix.
//!
//! The same runner backs `rcloak tournament --out DIR`, which exports
//! the per-cell entropy trajectories these tests are computed from.

use anonymizer::tournament::{
    self, behavior_mixes, TournamentProfile, TournamentReport, CELLS_CSV_HEADER,
    TRAJECTORIES_CSV_HEADER,
};
use cloak::AdversaryMode;
use std::sync::OnceLock;

fn report() -> &'static TournamentReport {
    static REPORT: OnceLock<TournamentReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        tournament::run(&TournamentProfile::from_env()).expect("tournament grid runs clean")
    })
}

/// Adversaries whose evidence model is sound (only the naive peel
/// intersection is allowed to lose the owner — that unsoundness is what
/// exposes it as bogus against keyed streams).
const SOUND: [AdversaryMode; 4] = [
    AdversaryMode::Correlate,
    AdversaryMode::Move,
    AdversaryMode::All,
    AdversaryMode::Adaptive,
];

/// Adversaries that exploit replayability of the keyless control.
const REPLAY_CAPABLE: [AdversaryMode; 3] = [
    AdversaryMode::Correlate,
    AdversaryMode::All,
    AdversaryMode::Adaptive,
];

#[test]
fn grid_is_complete_with_full_trajectories() {
    let report = report();
    let mixes = behavior_mixes();
    // 2 keyed schemes × 5 adversaries × 4 mixes, plus one NRE harvest
    // per (adversary, mix).
    let expected =
        2 * AdversaryMode::ALL.len() * mixes.len() + AdversaryMode::ALL.len() * mixes.len();
    assert_eq!(report.cells.len(), expected);
    for scheme in ["rge", "rple", "nre"] {
        for adversary in AdversaryMode::ALL {
            for (mix, _) in &mixes {
                let cell = report
                    .cell(scheme, adversary, mix)
                    .unwrap_or_else(|| panic!("missing cell {scheme}/{}/{mix}", adversary.name()));
                assert_eq!(
                    cell.trajectory.len(),
                    report.profile.ticks,
                    "{}: trajectory must cover every tick",
                    cell.name()
                );
                assert!(
                    cell.summary.observations() > 0,
                    "{}: empty cell",
                    cell.name()
                );
                // Trajectories are NaN-free (the satellite edge-case
                // fixes in cloak::attack guarantee this).
                for p in &cell.trajectory {
                    assert!(p.entropy_bits.is_finite(), "{}", cell.name());
                    assert!(p.user_entropy_bits.is_finite(), "{}", cell.name());
                }
            }
        }
    }
}

#[test]
fn sound_adversaries_never_place_zero_mass_on_truth() {
    let report = report();
    for cell in &report.cells {
        if SOUND.contains(&cell.adversary) {
            assert_eq!(
                cell.summary.soundness(),
                1.0,
                "{}: a sound adversary dropped the owner",
                cell.name()
            );
        }
    }
}

#[test]
fn keyed_engines_hold_k_anonymity_bits_against_every_sound_adversary() {
    let report = report();
    let k_bits = (report.profile.k_top() as f64).log2();
    for scheme in ["rge", "rple"] {
        for cell in report.scheme_cells(scheme) {
            if !SOUND.contains(&cell.adversary) {
                continue; // peel's posterior is wrong, not informative — see below
            }
            // The paper's bound with half a bit of slack, against every
            // sound adversary (the adaptive tracker included) in every
            // mix.
            assert!(
                cell.summary.mean_user_entropy() >= k_bits - 0.5,
                "{}: user entropy {:.2} collapsed below log2(k)={k_bits:.2}",
                cell.name(),
                cell.summary.mean_user_entropy()
            );
            // And guessing the exact segment stays near chance.
            assert!(
                cell.summary.guess_success_rate() <= 0.55,
                "{}: adversary guesses {:.2} of keyed cloaks",
                cell.name(),
                cell.summary.guess_success_rate()
            );
        }
    }
}

#[test]
fn naive_peel_intersection_is_provably_unsound() {
    // The peel adversary intersects successive regions as if the key
    // chain never moved the cloak; against a keyed stream (and against
    // the drifting NRE control) that posterior eventually excludes the
    // true segment — so whatever entropy it reports is about a *wrong*
    // distribution. This is why the k-anonymity bound above is scoped
    // to sound adversaries.
    let report = report();
    for scheme in ["rge", "rple", "nre"] {
        for (mix, _) in behavior_mixes() {
            let cell = report
                .cell(scheme, AdversaryMode::Peel, mix)
                .expect("peel cell exists");
            assert!(
                cell.summary.soundness() < 1.0,
                "{}: peel unexpectedly kept mass on the truth everywhere",
                cell.name()
            );
        }
    }
}

#[test]
fn nre_control_collapses_under_every_replay_capable_adversary() {
    let report = report();
    for adversary in REPLAY_CAPABLE {
        for (mix, _) in behavior_mixes() {
            let cell = report
                .cell("nre", adversary, mix)
                .expect("NRE harvest exists");
            assert!(
                cell.summary.mean_entropy() < 0.5,
                "{}: NRE kept {:.2} bits against a replay-capable adversary",
                cell.name(),
                cell.summary.mean_entropy()
            );
            assert!(
                cell.summary.guess_success_rate() >= 0.6,
                "{}: NRE guess success only {:.2}",
                cell.name(),
                cell.summary.guess_success_rate()
            );
        }
    }
}

#[test]
fn keyed_streams_separate_from_the_keyless_control_in_every_mix() {
    let report = report();
    for adversary in [AdversaryMode::All, AdversaryMode::Adaptive] {
        for (mix, _) in behavior_mixes() {
            let nre = report
                .cell("nre", adversary, mix)
                .expect("NRE harvest exists");
            for scheme in ["rge", "rple"] {
                let keyed = report.cell(scheme, adversary, mix).expect("keyed cell");
                assert!(
                    keyed.summary.mean_user_entropy() - nre.summary.mean_user_entropy() >= 1.0,
                    "{mix}/{}: {scheme} {:.2} vs NRE {:.2} bits",
                    adversary.name(),
                    keyed.summary.mean_user_entropy(),
                    nre.summary.mean_user_entropy()
                );
            }
        }
    }
}

#[test]
fn csv_exports_cover_the_grid_with_fixed_arity() {
    let report = report();
    let cells = report.cells_csv();
    let cell_cols = CELLS_CSV_HEADER.split(',').count();
    let cell_rows: Vec<&str> = cells.lines().skip(1).collect();
    assert_eq!(cell_rows.len(), report.cells.len());
    assert!(cell_rows.iter().all(|r| r.split(',').count() == cell_cols));

    let traj = report.trajectories_csv();
    let traj_cols = TRAJECTORIES_CSV_HEADER.split(',').count();
    let traj_rows: Vec<&str> = traj.lines().skip(1).collect();
    assert_eq!(
        traj_rows.len(),
        report.cells.len() * report.profile.ticks,
        "one trajectory row per cell per tick"
    );
    assert!(traj_rows.iter().all(|r| r.split(',').count() == traj_cols));
}
