//! Spatio-temporal cloaking: k-anonymity over a time *window* (the
//! temporal granularity the paper's privacy framing includes).
//!
//! In sparse traffic, instantaneous snapshots force huge regions; a
//! windowed snapshot (users seen during `[t, t+Δ]`) reaches the same k
//! with a smaller region, trading temporal precision for spatial
//! precision — and the whole construction stays exactly reversible.

use reversecloak::prelude::*;

fn sparse_world(seed: u64) -> (Simulation, Simulation) {
    let make = || {
        Simulation::new(
            roadnet::grid_city(10, 10, 100.0),
            SimConfig {
                cars: 60, // sparse: ~1 car per 3 segments
                seed,
                ..Default::default()
            },
        )
    };
    (make(), make())
}

#[test]
fn windowed_snapshot_shrinks_regions_in_sparse_traffic() {
    let (sim_a, mut sim_b) = sparse_world(17);
    let instant = OccupancySnapshot::capture(&sim_a);
    let windowed = OccupancySnapshot::capture_window(&mut sim_b, 12, 10.0);

    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(8))
        .build()
        .unwrap();
    let manager = KeyManager::from_seed(1, 4);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let engine = RgeEngine::new();

    // Compare mean region sizes over several occupied request sites.
    let sites: Vec<SegmentId> = instant.occupied_segments().take(10).collect();
    let mut inst_total = 0usize;
    let mut wind_total = 0usize;
    let mut pairs = 0usize;
    for (i, &site) in sites.iter().enumerate() {
        let inst = cloak::anonymize_with_retry(
            sim_a.network(),
            &instant,
            site,
            &profile,
            &keys,
            i as u64,
            &engine,
            8,
        );
        let wind = cloak::anonymize_with_retry(
            sim_a.network(),
            &windowed,
            site,
            &profile,
            &keys,
            i as u64,
            &engine,
            8,
        );
        if let (Ok((a, _)), Ok((b, _))) = (inst, wind) {
            inst_total += a.payload.region_size();
            wind_total += b.payload.region_size();
            pairs += 1;

            // Reversibility holds against the windowed snapshot too.
            let view = cloak::deanonymize(
                sim_a.network(),
                &b.payload,
                &manager.keys_down_to(Level(0)).unwrap(),
                &engine,
            )
            .unwrap();
            assert_eq!(view.segments, vec![site]);
        }
    }
    assert!(pairs >= 5, "not enough comparable runs ({pairs})");
    assert!(
        wind_total < inst_total,
        "windowed regions ({wind_total}) should be smaller than instantaneous ({inst_total}) \
         over {pairs} requests"
    );
}

/// A zero-length window (`samples` 0 or 1) degenerates to an instant
/// capture and must not advance the simulation at all.
#[test]
fn zero_length_window_is_an_instant_capture() {
    let (_, mut sim) = sparse_world(31);
    let instant = OccupancySnapshot::capture(&sim);
    for samples in [0usize, 1] {
        let clock_before = sim.clock();
        let window = OccupancySnapshot::capture_window(&mut sim, samples, 10.0);
        assert_eq!(sim.clock(), clock_before, "samples={samples} must not step");
        assert_eq!(window, instant, "samples={samples}");
    }
}

/// A window far longer than any trip on the map (hours of driving on a
/// small grid) stays well-defined: counts keep being per-segment maxima,
/// the clock advances exactly `(samples-1)·dt`, and no segment ever
/// reports more users than exist.
#[test]
fn window_longer_than_the_sim_horizon_saturates_cleanly() {
    let (_, mut sim) = sparse_world(37);
    let cars = sim.cars().len() as u64;
    let samples = 40;
    let dt = 120.0; // 78 minutes of simulated driving
    let window = OccupancySnapshot::capture_window(&mut sim, samples, dt);
    assert!((sim.clock() - (samples as f64 - 1.0) * dt).abs() < 1e-9);
    assert_eq!(window.taken_at_ms(), (sim.clock() * 1000.0) as u64);
    for s in 0..window.segment_count() as u32 {
        assert!(window.users_on(SegmentId(s)) as u64 <= cars);
    }
    // Long windows accumulate: total at least the final instant's.
    let final_instant = OccupancySnapshot::capture(&sim);
    assert!(window.total_users() >= final_instant.total_users());
    // On a small grid over a long window nearly every segment was
    // visited at some point.
    assert!(
        window.occupied_segments().count() > window.segment_count() / 2,
        "only {} of {} segments ever occupied",
        window.occupied_segments().count(),
        window.segment_count()
    );
}

/// Empty traffic: a windowed capture over a simulation with zero cars is
/// the all-zero snapshot, not a panic or a skewed total.
#[test]
fn empty_traffic_window_is_all_zeros() {
    let mut sim = Simulation::new(
        roadnet::grid_city(5, 5, 100.0),
        SimConfig {
            cars: 0,
            seed: 1,
            ..Default::default()
        },
    );
    let window = OccupancySnapshot::capture_window(&mut sim, 6, 10.0);
    assert_eq!(window.total_users(), 0);
    assert_eq!(window.occupied_segments().count(), 0);
    assert_eq!(window.segment_count(), sim.network().segment_count());
    for s in 0..window.segment_count() as u32 {
        assert_eq!(window.users_on(SegmentId(s)), 0);
    }
}

#[test]
fn windowed_k_anonymity_is_certified_by_the_window() {
    let (_, mut sim) = sparse_world(23);
    let windowed = OccupancySnapshot::capture_window(&mut sim, 8, 10.0);
    let profile = PrivacyProfile::builder()
        .level(LevelRequirement::with_k(6))
        .build()
        .unwrap();
    let manager = KeyManager::from_seed(1, 9);
    let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
    let site = windowed
        .occupied_segments()
        .next()
        .expect("sparse world still has occupied segments");
    let (out, _) = cloak::anonymize_with_retry(
        sim.network(),
        &windowed,
        site,
        &profile,
        &keys,
        3,
        &RgeEngine::new(),
        8,
    )
    .unwrap();
    assert!(windowed.users_in(out.payload.segments.iter().copied()) >= 6);
}
