//! # reversecloak — reversible multi-level location privacy over road networks
//!
//! A full reproduction of *ReverseCloak: A Reversible Multi-level Location
//! Privacy Protection System* (Li, Palanisamy, Kalaivanan, Raghunathan;
//! ICDCS 2017) and its companion algorithms paper (CIKM 2015), as a Rust
//! workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`roadnet`] | Road networks: graphs, routing, spatial index, synthetic map generators |
//! | [`mobisim`] | GTMobiSim-style traffic: Gaussian car placement, shortest-path trips, occupancy snapshots |
//! | [`keystream`] | Access keys, keyed draw streams, key management, access control |
//! | [`cloak`] | The core: RGE and RPLE reversible cloaking, multi-level protocol, payload codec, baseline, attack analysis |
//! | [`anonymizer`] | The demonstration toolkit: Anonymizer/De-anonymizer services, concurrent server, map rendering |
//! | [`lbs`] | POIs and anonymous query processing over cloaked regions |
//!
//! This facade re-exports everything; depend on it and `use
//! reversecloak::prelude::*` for the common surface.
//!
//! ## Example
//!
//! ```
//! use reversecloak::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A road network and traffic.
//! let net = roadnet::grid_city(6, 6, 100.0);
//! let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
//!
//! // A 2-level profile and keys.
//! let profile = PrivacyProfile::builder()
//!     .level(LevelRequirement::with_k(5))
//!     .level(LevelRequirement::with_k(12))
//!     .build()?;
//! let manager = KeyManager::from_seed(2, 7);
//! let keys: Vec<Key256> = manager.iter().map(|(_, k)| k).collect();
//!
//! // Cloak, then peel back with the keys.
//! let engine = RgeEngine::new();
//! let out = cloak::anonymize(&net, &snapshot, SegmentId(17), &profile, &keys, 1, &engine)?;
//! let view = cloak::deanonymize(&net, &out.payload, &manager.keys_down_to(Level(0))?, &engine)?;
//! assert_eq!(view.segments, vec![SegmentId(17)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonymizer;
pub use lbs;
pub use cloak;
pub use keystream;
pub use mobisim;
pub use roadnet;

/// The commonly used types, re-exported flat.
pub mod prelude {
    pub use anonymizer::{
        AnonymizeReceipt, AnonymizerConfig, AnonymizerServer, AnonymizerService, Deanonymizer,
        Engine, EngineChoice,
    };
    pub use cloak::{
        anonymize, anonymize_with_retry, deanonymize, CloakError, CloakPayload, DeanonError,
        LevelRequirement, PrivacyProfile, RegionQuality, ReversibleEngine, RgeEngine, RpleEngine,
        SpatialTolerance, SuccessRate,
    };
    pub use keystream::{
        AccessControlProfile, DrawStream, Key256, KeyManager, Level, TrustDegree,
    };
    pub use mobisim::{OccupancySnapshot, SimConfig, Simulation};
    pub use roadnet::{JunctionId, RoadNetwork, SegmentId};
}
