//! # reversecloak — reversible multi-level location privacy over road networks
//!
//! A full reproduction of *ReverseCloak: A Reversible Multi-level Location
//! Privacy Protection System* (Li, Palanisamy, Kalaivanan, Raghunathan;
//! ICDCS 2017) and its companion algorithms paper (CIKM 2015), as a Rust
//! workspace built for concurrent, production-shaped serving:
//!
//! | Crate | Role |
//! |---|---|
//! | [`roadnet`] | Road networks: graphs, routing, spatial index, synthetic map generators |
//! | [`mobisim`] | GTMobiSim-style traffic: Gaussian car placement, shortest-path trips, occupancy snapshots |
//! | [`keystream`] | Access keys, keyed draw streams, key management, access control |
//! | [`cloak`] | The core: RGE and RPLE reversible cloaking (all `&self`, `Send + Sync`), multi-level protocol, payload codec, NRE baseline, single-shot and temporal attack analysis |
//! | [`anonymizer`] | The toolkit: sharded lock-free `AnonymizerService`, multi-worker `AnonymizerServer` with a batch pipeline, continuous tick-driven pipeline with LBS and attack legs, De-anonymizer, map rendering, `rcloak` CLI |
//! | [`lbs`] | POIs and anonymous query processing over cloaked regions |
//!
//! The system narrative — concurrency model, temporal pipeline, memory
//! discipline, adversarial evaluation — lives in `docs/ARCHITECTURE.md`
//! at the repository root, next to `README.md`.
//!
//! The anonymizer's hot path works entirely from `&self`: immutable state
//! (network, engine, config) is shared behind `Arc`, the traffic snapshot
//! swaps atomically without blocking readers, and owner records live in
//! hash-sharded `RwLock` maps — so a worker pool scales with cores
//! instead of serializing behind a global lock.
//!
//! This facade re-exports everything; depend on it and `use
//! reversecloak::prelude::*` for the common surface.
//!
//! ## Example: a shared service and a batch pipeline
//!
//! ```
//! use reversecloak::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A road network and traffic.
//! let net = roadnet::grid_city(6, 6, 100.0);
//! let snapshot = OccupancySnapshot::uniform(net.segment_count(), 1);
//!
//! // The trusted anonymizer: the whole anonymize path is `&self`, so
//! // one Arc serves every thread with no lock around the service.
//! let service = Arc::new(AnonymizerService::new(net, AnonymizerConfig::default()));
//! service.update_snapshot(snapshot);
//!
//! // One-off request: cloak, grant a requester full access, recover.
//! let receipt = service.anonymize_owner("alice", SegmentId(17), None, &mut rand::thread_rng())?;
//! service.register_requester("alice", "police", TrustDegree(10), Level(0));
//! let keys = service.fetch_keys("alice", "police")?;
//! let dean = Deanonymizer::new(
//!     service.network_arc(),
//!     Engine::build(service.network(), service.config().engine),
//! );
//! assert_eq!(dean.reduce(&receipt.payload, &keys)?.segments, vec![SegmentId(17)]);
//!
//! // Batch pipeline: seeded requests fan out across cores and return in
//! // order, bit-identical to sequential execution.
//! let requests: Vec<AnonymizeRequest> = (0..8)
//!     .map(|i| AnonymizeRequest::new(format!("car-{i}"), SegmentId(i * 7 % 60), 1000 + i as u64))
//!     .collect();
//! let receipts = service.anonymize_batch(&requests);
//! assert!(receipts.iter().all(|r| r.is_ok()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonymizer;
pub use cloak;
pub use keystream;
pub use lbs;
pub use mobisim;
pub use roadnet;

/// The commonly used types, re-exported flat.
pub mod prelude {
    pub use anonymizer::{
        AnonymizeReceipt, AnonymizeRequest, AnonymizerConfig, AnonymizerServer, AnonymizerService,
        AttackConfig, AttackRecord, ContinuousPipeline, Deanonymizer, Engine, EngineChoice,
        PipelineConfig, PipelineError, TickReport,
    };
    pub use cloak::{
        anonymize, anonymize_with_retry, deanonymize, AdversaryMode, AttackSummary, CloakError,
        CloakPayload, DeanonError, LevelRequirement, PrivacyProfile, QualitySummary, RegionQuality,
        ReversibleEngine, RgeEngine, RpleEngine, SpatialTolerance, SuccessRate, TemporalAdversary,
    };
    pub use keystream::{AccessControlProfile, DrawStream, Key256, KeyManager, Level, TrustDegree};
    pub use lbs::{nearest_query, range_query, PoiCategory, PoiStore, QueryStats};
    pub use mobisim::{OccupancySnapshot, SimConfig, Simulation};
    pub use roadnet::{JunctionId, RoadNetwork, SegmentId};
}
